package workload

import (
	"fmt"

	"repro/internal/egp"
	"repro/internal/sim"
)

// ArrivalKind names a request arrival process of the multi-class workload
// engine.
type ArrivalKind string

// The arrival processes of the workload engine. The first three are
// open-loop (arrivals do not depend on service): a homogeneous Poisson
// process, a two-state Markov-modulated (bursty) Poisson process and a
// non-homogeneous Poisson process cycling through diurnal phases. The last
// is closed-loop: a fixed population of think-time sessions, each issuing
// its next CREATE when the previous request finishes.
const (
	ArrivalPoisson ArrivalKind = "poisson"
	ArrivalBursty  ArrivalKind = "bursty"
	ArrivalDiurnal ArrivalKind = "diurnal"
	ArrivalClosed  ArrivalKind = "closed"
)

// Phase is one segment of a diurnal cycle: for Fraction of the period the
// instantaneous arrival rate is Multiplier times the class's base rate.
type Phase struct {
	// Fraction of the cycle period this phase spans; the fractions of a
	// cycle must sum to 1.
	Fraction float64
	// Multiplier scales the base rate during the phase (0 silences it).
	Multiplier float64
}

// Arrival describes how one traffic class generates requests. Exactly one
// intensity source applies: open-loop classes use either Load (an offered
// load fraction of the serving site's sustainable pair rate, the paper's f)
// or a user population (Users x PerUserRate arrivals per second across the
// whole network); closed-loop classes are sized by Sessions.
type Arrival struct {
	Kind ArrivalKind

	// Load is the offered-load fraction f of the paper's arrival model,
	// applied per serving site (see PerCycleProbability).
	Load float64
	// Users is the size of the user population driving this class; the
	// aggregate request rate is Users * PerUserRate, split evenly across
	// serving sites. Populations of millions are cheap: open-loop users
	// exist only as a rate.
	Users int
	// PerUserRate is each user's request rate in arrivals per simulated
	// second.
	PerUserRate float64

	// BurstMultiplier scales the rate while a bursty class is in its burst
	// state (>= 1; the idle state runs at the base rate).
	BurstMultiplier float64
	// MeanBurst and MeanIdle are the mean sojourn times of the burst and
	// idle states (exponentially distributed).
	MeanBurst, MeanIdle sim.Duration

	// Period is the diurnal cycle length; Phases partition it.
	Period sim.Duration
	// Phases is the diurnal profile; fractions must sum to 1.
	Phases []Phase

	// Sessions is the closed-loop population: each session issues one
	// request, waits for it to finish (all pairs delivered, or a timeout or
	// error), thinks for an exponentially distributed time, then issues the
	// next.
	Sessions int
	// ThinkTime is the mean think time between a session's requests.
	ThinkTime sim.Duration
}

// Closed reports whether the arrival process is closed-loop.
func (a Arrival) Closed() bool { return a.Kind == ArrivalClosed }

// AverageMultiplier returns the time-averaged rate multiplier of the
// arrival shaping: 1 for Poisson, the sojourn-weighted state multiplier for
// bursty, the fraction-weighted phase multiplier for diurnal.
func (a Arrival) AverageMultiplier() float64 {
	switch a.Kind {
	case ArrivalBursty:
		b, i := a.MeanBurst.Seconds(), a.MeanIdle.Seconds()
		if b+i <= 0 {
			return 1
		}
		return (b*a.BurstMultiplier + i) / (b + i)
	case ArrivalDiurnal:
		m := 0.0
		for _, p := range a.Phases {
			m += p.Fraction * p.Multiplier
		}
		return m
	default:
		return 1
	}
}

// validate checks the arrival description in isolation.
func (a Arrival) validate() error {
	switch a.Kind {
	case ArrivalPoisson, ArrivalBursty, ArrivalDiurnal:
		hasLoad := a.Load > 0
		hasUsers := a.Users > 0 && a.PerUserRate > 0
		if hasLoad == hasUsers {
			return fmt.Errorf("open-loop arrivals need exactly one intensity: load, or users with per_user_rate")
		}
		if a.Sessions != 0 || a.ThinkTime != 0 {
			return fmt.Errorf("sessions/think_time only apply to closed-loop arrivals")
		}
	case ArrivalClosed:
		if a.Sessions <= 0 {
			return fmt.Errorf("closed-loop arrivals need sessions > 0")
		}
		if a.ThinkTime <= 0 {
			return fmt.Errorf("closed-loop arrivals need think_time > 0")
		}
		if a.Load != 0 || a.Users != 0 || a.PerUserRate != 0 {
			return fmt.Errorf("closed-loop arrivals are sized by sessions, not load/users")
		}
	default:
		return fmt.Errorf("unknown arrival kind %q (poisson|bursty|diurnal|closed)", a.Kind)
	}
	switch a.Kind {
	case ArrivalBursty:
		if a.BurstMultiplier < 1 {
			return fmt.Errorf("bursty arrivals need burst_multiplier >= 1, got %g", a.BurstMultiplier)
		}
		if a.MeanBurst <= 0 || a.MeanIdle <= 0 {
			return fmt.Errorf("bursty arrivals need positive mean burst and idle sojourns")
		}
	case ArrivalDiurnal:
		if a.Period <= 0 {
			return fmt.Errorf("diurnal arrivals need a positive period")
		}
		if len(a.Phases) == 0 {
			return fmt.Errorf("diurnal arrivals need at least one phase")
		}
		total, peak := 0.0, 0.0
		for i, p := range a.Phases {
			if p.Fraction <= 0 {
				return fmt.Errorf("diurnal phase %d needs a positive fraction", i)
			}
			if p.Multiplier < 0 {
				return fmt.Errorf("diurnal phase %d has a negative multiplier", i)
			}
			total += p.Fraction
			if p.Multiplier > peak {
				peak = p.Multiplier
			}
		}
		if total < 1-1e-9 || total > 1+1e-9 {
			return fmt.Errorf("diurnal phase fractions must sum to 1, got %g", total)
		}
		if peak == 0 {
			return fmt.Errorf("diurnal arrivals need at least one phase with a positive multiplier")
		}
	}
	return nil
}

// ClassSpec describes one traffic class of the multi-class workload engine:
// a user population with an arrival process, a request shape (priority, pair
// count, fidelity floor, deadline) and an origin policy.
type ClassSpec struct {
	// Name labels the class in SLO tables (e.g. "qkd-sessions").
	Name string
	// Priority selects the EGP lane: egp.PriorityNL, PriorityCK or
	// PriorityMD. NL and CK are create-and-keep; MD measures directly.
	Priority int
	// Arrival is the class's request arrival process.
	Arrival Arrival
	// MinPairs/MaxPairs bound the uniformly sampled pair count per request;
	// FixedPairs, when non-zero, pins it instead.
	MinPairs, MaxPairs int
	FixedPairs         int
	// MinFidelity is the requested fidelity floor (the long runs use 0.64).
	MinFidelity float64
	// Deadline is the per-request timeout (0 = none); requests that miss it
	// fail with TIMEOUT and count into the class's timeout rate.
	Deadline sim.Duration
	// Origin selects the submitting endpoint per request: OriginA, OriginB
	// or OriginRandom.
	Origin Origin
}

// Keep reports whether this class issues create-and-keep requests (NL and
// CK store the qubit; MD measures directly).
func (c ClassSpec) Keep() bool { return c.Priority != egp.PriorityMD }

// MeanPairs returns the expected pair count per request.
func (c ClassSpec) MeanPairs() float64 {
	if c.FixedPairs > 0 {
		return float64(c.FixedPairs)
	}
	return (float64(c.MinPairs) + float64(c.MaxPairs)) / 2
}

// Validate checks the class description.
func (c ClassSpec) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("workload: class needs a name")
	}
	if c.Priority < 0 || c.Priority >= egp.NumQueues {
		return fmt.Errorf("workload: class %s: priority %d out of range", c.Name, c.Priority)
	}
	if c.FixedPairs < 0 {
		return fmt.Errorf("workload: class %s: negative fixed pair count", c.Name)
	}
	if c.FixedPairs == 0 {
		if c.MinPairs < 1 || c.MaxPairs < c.MinPairs {
			return fmt.Errorf("workload: class %s: pair range [%d,%d] invalid (need 1 <= min <= max)", c.Name, c.MinPairs, c.MaxPairs)
		}
	}
	if c.MinFidelity <= 0 || c.MinFidelity > 1 {
		return fmt.Errorf("workload: class %s: min fidelity %g out of (0,1]", c.Name, c.MinFidelity)
	}
	if c.Deadline < 0 {
		return fmt.Errorf("workload: class %s: negative deadline", c.Name)
	}
	switch c.Origin {
	case OriginA, OriginB, OriginRandom:
	default:
		return fmt.Errorf("workload: class %s: unknown origin policy %d", c.Name, c.Origin)
	}
	if err := c.Arrival.validate(); err != nil {
		return fmt.Errorf("workload: class %s: %v", c.Name, err)
	}
	return nil
}

// PriorityName renders an EGP priority lane as its paper name.
func PriorityName(p int) string {
	switch p {
	case egp.PriorityNL:
		return "NL"
	case egp.PriorityCK:
		return "CK"
	case egp.PriorityMD:
		return "MD"
	default:
		return fmt.Sprintf("P%d", p)
	}
}

// ParsePriority resolves a paper priority name (NL, CK or MD) to its EGP
// lane.
func ParsePriority(name string) (int, error) {
	switch name {
	case "NL":
		return egp.PriorityNL, nil
	case "CK":
		return egp.PriorityCK, nil
	case "MD":
		return egp.PriorityMD, nil
	default:
		return 0, fmt.Errorf("workload: unknown priority %q (NL|CK|MD)", name)
	}
}

// ParseOrigin resolves an origin policy name ("A", "B" or "random").
func ParseOrigin(name string) (Origin, error) {
	switch name {
	case "A":
		return OriginA, nil
	case "B":
		return OriginB, nil
	case "random", "":
		return OriginRandom, nil
	default:
		return 0, fmt.Errorf("workload: unknown origin policy %q (A|B|random)", name)
	}
}
