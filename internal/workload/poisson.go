package workload

import (
	"repro/internal/egp"
	"repro/internal/nv"
	"repro/internal/sim"
)

// This file is the single home of the paper's Poisson request-arrival model,
// shared by the two-node workload generator (per-cycle Bernoulli sampling,
// Section 6) and the multi-link netsim traffic generator (exponential
// interarrival scheduling). Both express their rates through
// PerCycleProbability/RatePerSecond, and the event-driven flavour runs on
// PoissonStream, so the arrival statistics stay identical no matter which
// layer drives them.

// PerCycleProbability returns the probability that a new request arrives in
// one MHP cycle before dividing by the sampled pair count k: f·psucc/E, with
// psucc the per-attempt herald success probability at the α meeting the
// requested fidelity and E the expected cycles per attempt of the request
// kind (Section 6). It returns 0 when the requested fidelity is infeasible on
// the hardware or the load fraction is non-positive.
func PerCycleProbability(feu *egp.FidelityEstimationUnit, platform *nv.Platform, keep bool, load, minFidelity float64) float64 {
	if load <= 0 {
		return 0
	}
	alpha, ok := feu.AlphaForFidelity(minFidelity)
	if !ok {
		return 0
	}
	rt := nv.RequestMeasure
	if keep {
		rt = nv.RequestKeep
	}
	e := platform.ExpectedCyclesPerAttempt[rt]
	if e < 1 {
		e = 1
	}
	return load * feu.SuccessProbability(alpha) / e
}

// RatePerSecond converts the per-cycle arrival probability into a request
// rate in arrivals per simulated second for a mean request size of meanPairs:
// rate = f·psucc / (E·cycleTime·k̄), the arrival model netsim's exponential
// interarrival scheduling uses.
func RatePerSecond(feu *egp.FidelityEstimationUnit, platform *nv.Platform, keep bool, load, minFidelity, meanPairs float64) float64 {
	p := PerCycleProbability(feu, platform, keep, load, minFidelity)
	if p <= 0 {
		return 0
	}
	cycleSec := platform.CycleTime[nv.RequestMeasure].Seconds()
	if cycleSec <= 0 || meanPairs <= 0 {
		return 0
	}
	return p / (cycleSec * meanPairs)
}

// PoissonStream schedules a Poisson arrival process on the shared simulator:
// exponential interarrival times drawn from the simulator RNG, one fire
// callback per arrival. Streams are restartable; arrivals already scheduled
// before a Stop die on a generation check instead of rescheduling alongside
// the fresh chain (which would double the offered load after a restart).
type PoissonStream struct {
	sim  sim.Engine
	rate float64
	fire func()

	running    bool
	generation uint64
	arrivals   uint64
}

// NewPoissonStream builds a stream firing at the given rate (arrivals per
// simulated second). A non-positive rate yields a stream that never fires.
func NewPoissonStream(s sim.Engine, rate float64, fire func()) *PoissonStream {
	return &PoissonStream{sim: s, rate: rate, fire: fire}
}

// Rate returns the configured arrival rate in arrivals per second.
func (p *PoissonStream) Rate() float64 { return p.rate }

// Arrivals returns how many times the stream has fired.
func (p *PoissonStream) Arrivals() uint64 { return p.arrivals }

// Start schedules the first arrival. It is idempotent while running.
func (p *PoissonStream) Start() {
	if p.running || p.rate <= 0 {
		return
	}
	p.running = true
	p.generation++
	p.scheduleNext(p.generation)
}

// Stop halts future arrivals; already-scheduled ones die on the generation
// check.
func (p *PoissonStream) Stop() { p.running = false }

// scheduleNext draws the next exponential interarrival time and schedules the
// arrival.
func (p *PoissonStream) scheduleNext(generation uint64) {
	delay := sim.DurationSeconds(p.sim.RNG().Exponential(p.rate))
	sim.Schedule(p.sim, delay, func() {
		if !p.running || generation != p.generation {
			return
		}
		p.arrivals++
		p.fire()
		p.scheduleNext(generation)
	})
}
