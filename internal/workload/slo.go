package workload

import (
	"fmt"

	"repro/internal/metrics"
)

// ClassAccount accumulates one serving site's delivered service for one
// traffic class. Sites (e.g. netsim links) each own one account per class,
// mutated only from their own engine's events, and the per-site accounts are
// merged in deterministic site order when a run finishes — which is what
// keeps SLO tables byte-identical at any shard count.
type ClassAccount struct {
	// Offered counts submitted CREATE requests; Rejected the synchronous
	// rejects among them (queue full, infeasible fidelity).
	Offered, Rejected uint64
	// NoRoute counts, within Rejected, the synchronous no-route rejects
	// (NOROUTE: unreachable endpoints or no path meeting the fidelity floor).
	NoRoute uint64
	// PairsRequested sums the pair counts of accepted requests.
	PairsRequested uint64
	// Pairs counts delivered pairs; Completed fully served requests.
	Pairs, Completed uint64
	// TimedOut counts requests that failed with TIMEOUT; Outage requests
	// killed by a link outage (LINKDOWN) — the fault injector's signature,
	// kept apart from deadline misses; Failed all other asynchronous
	// failures.
	TimedOut, Outage, Failed uint64
	// TTP collects per-pair time-to-pair observations in seconds (delivery
	// time minus the request's CREATE time).
	TTP metrics.Series
}

// Merge folds other into a. Quantile summaries are order-independent, and
// callers merge in deterministic site order so sums are too.
func (a *ClassAccount) Merge(other *ClassAccount) {
	a.Offered += other.Offered
	a.Rejected += other.Rejected
	a.NoRoute += other.NoRoute
	a.PairsRequested += other.PairsRequested
	a.Pairs += other.Pairs
	a.Completed += other.Completed
	a.TimedOut += other.TimedOut
	a.Outage += other.Outage
	a.Failed += other.Failed
	for _, v := range other.TTP.Values() {
		a.TTP.Add(v)
	}
}

// Terminal returns how many accepted requests reached a terminal state.
func (a *ClassAccount) Terminal() uint64 {
	return a.Completed + a.TimedOut + a.Outage + a.Failed
}

// Outstanding returns how many accepted requests are still in flight.
func (a *ClassAccount) Outstanding() uint64 {
	accepted := a.Offered - a.Rejected
	t := a.Terminal()
	if t > accepted {
		return 0
	}
	return accepted - t
}

// ClassSLO is the per-class service-level report of one run: offered vs
// delivered traffic, timeout rate, time-to-pair percentiles and a starvation
// flag.
type ClassSLO struct {
	Class    string
	Priority int
	Offered  uint64
	Rejected uint64
	// NoRoute is the no-route share of Rejected.
	NoRoute uint64
	Pairs   uint64
	// Completed / TimedOut / Outage / Failed partition the terminal requests;
	// Outage isolates requests killed by link outages from deadline misses.
	Completed, TimedOut, Outage, Failed uint64
	// Outstanding requests were still in flight when the run ended.
	Outstanding uint64
	// Throughput is delivered pairs per simulated second.
	Throughput float64
	// TTPP50/TTPP99 are the per-pair time-to-pair percentiles in seconds.
	TTPP50, TTPP99 float64
	// TimeoutRate is TimedOut over terminal requests (0 when none ended).
	TimeoutRate float64
	// OldestWaitSeconds is the age of the oldest still-outstanding request
	// at the end of the run (0 when none are outstanding).
	OldestWaitSeconds float64
	// Starved flags a class that had accepted requests but saw zero pairs
	// delivered while other classes were being served.
	Starved bool
}

// BuildSLO turns merged per-class accounts into the SLO report. oldestWait
// holds, per class, the age in seconds of the oldest request still
// outstanding at the end of the run (pass nil when untracked); duration is
// the measured interval in simulated seconds.
func BuildSLO(classes []ClassSpec, accounts []*ClassAccount, oldestWait []float64, duration float64) []ClassSLO {
	var totalPairs uint64
	for _, a := range accounts {
		totalPairs += a.Pairs
	}
	out := make([]ClassSLO, len(classes))
	for i, c := range classes {
		a := accounts[i]
		s := ClassSLO{
			Class:       c.Name,
			Priority:    c.Priority,
			Offered:     a.Offered,
			Rejected:    a.Rejected,
			NoRoute:     a.NoRoute,
			Pairs:       a.Pairs,
			Completed:   a.Completed,
			TimedOut:    a.TimedOut,
			Outage:      a.Outage,
			Failed:      a.Failed,
			Outstanding: a.Outstanding(),
			Throughput:  metrics.SafeRate(float64(a.Pairs), duration),
			TTPP50:      a.TTP.Percentile(50),
			TTPP99:      a.TTP.Percentile(99),
		}
		if t := a.Terminal(); t > 0 {
			s.TimeoutRate = float64(a.TimedOut) / float64(t)
		}
		if oldestWait != nil {
			s.OldestWaitSeconds = oldestWait[i]
		}
		// Starvation: the class asked for service and got none while the
		// rest of the network delivered pairs.
		s.Starved = a.Offered > a.Rejected && a.Pairs == 0 && totalPairs > 0
		out[i] = s
	}
	return out
}

// SLOColumns is the canonical column set of the per-class SLO table printed
// by the CLIs.
var SLOColumns = []string{
	"class", "prio", "offered", "rejected", "noroute", "pairs", "completed",
	"timeout", "outage", "failed", "inflight", "pairs/s", "ttp_p50(s)",
	"ttp_p99(s)", "timeout_rate", "oldest_wait(s)", "starved",
}

// Row renders the report as one table row matching SLOColumns.
func (s ClassSLO) Row() []string {
	starved := "no"
	if s.Starved {
		starved = "STARVED"
	}
	return []string{
		s.Class,
		PriorityName(s.Priority),
		fmt.Sprintf("%d", s.Offered),
		fmt.Sprintf("%d", s.Rejected),
		fmt.Sprintf("%d", s.NoRoute),
		fmt.Sprintf("%d", s.Pairs),
		fmt.Sprintf("%d", s.Completed),
		fmt.Sprintf("%d", s.TimedOut),
		fmt.Sprintf("%d", s.Outage),
		fmt.Sprintf("%d", s.Failed),
		fmt.Sprintf("%d", s.Outstanding),
		fmt.Sprintf("%.3f", s.Throughput),
		fmt.Sprintf("%.4f", s.TTPP50),
		fmt.Sprintf("%.4f", s.TTPP99),
		fmt.Sprintf("%.3f", s.TimeoutRate),
		fmt.Sprintf("%.4f", s.OldestWaitSeconds),
		starved,
	}
}
