package workload

import (
	"math"

	"repro/internal/sim"
)

// Process is a startable open-loop arrival process bound to one engine:
// PoissonStream, BurstyStream and DiurnalStream implement it. Closed-loop
// arrivals have no standalone process — their sessions live in the serving
// engine (see netsim.MultiTraffic).
type Process interface {
	// Start schedules the first arrival; it is idempotent while running.
	Start()
	// Stop halts future arrivals.
	Stop()
	// Arrivals returns how many times the process has fired.
	Arrivals() uint64
}

// NewProcess builds the open-loop arrival process described by a for one
// serving site: avgRate is the target time-averaged arrival rate in
// arrivals per simulated second, fire runs once per arrival on the site's
// engine. A non-positive rate (e.g. an infeasible fidelity request) yields a
// process that never fires. Closed-loop kinds return nil: their sessions are
// driven by request completions, not by a free-running process.
func NewProcess(eng sim.Engine, avgRate float64, a Arrival, fire func()) Process {
	switch a.Kind {
	case ArrivalBursty:
		return NewBurstyStream(eng, avgRate, a, fire)
	case ArrivalDiurnal:
		return NewDiurnalStream(eng, avgRate, a, fire)
	case ArrivalClosed:
		return nil
	default:
		return NewPoissonStream(eng, avgRate, fire)
	}
}

// BurstyStream is a two-state Markov-modulated Poisson process: the
// instantaneous rate alternates between a base ("idle") level and
// BurstMultiplier times that level, with exponentially distributed sojourns
// in each state. It is implemented by thinning a homogeneous candidate
// chain running at the burst-state rate: each candidate arrival is accepted
// with probability rate(state)/peak, which yields an exact MMPP without
// rescheduling in-flight arrivals on state switches. The time-averaged rate
// equals the configured average regardless of the burst shape.
type BurstyStream struct {
	eng   sim.Engine
	peak  float64 // candidate chain rate = burst-state rate
	accat [2]float64
	// sojournRate[s] is the exponential rate of leaving state s.
	sojournRate [2]float64
	fire        func()

	avgRate    float64
	state      int // 0 idle, 1 burst; starts idle
	running    bool
	generation uint64
	arrivals   uint64
}

// NewBurstyStream builds a bursty stream with the given time-averaged rate.
// A non-positive average yields a stream that never fires.
func NewBurstyStream(eng sim.Engine, avgRate float64, a Arrival, fire func()) *BurstyStream {
	s := &BurstyStream{eng: eng, fire: fire}
	avgMult := a.AverageMultiplier()
	if avgRate <= 0 || avgMult <= 0 {
		return s
	}
	base := avgRate / avgMult
	s.avgRate = avgRate
	s.peak = base * a.BurstMultiplier
	s.accat = [2]float64{1 / a.BurstMultiplier, 1}
	s.sojournRate = [2]float64{1 / a.MeanIdle.Seconds(), 1 / a.MeanBurst.Seconds()}
	return s
}

// Rate returns the time-averaged arrival rate.
func (s *BurstyStream) Rate() float64 { return s.avgRate }

// Arrivals returns how many times the stream has fired.
func (s *BurstyStream) Arrivals() uint64 { return s.arrivals }

// State returns the current modulation state (0 idle, 1 burst).
func (s *BurstyStream) State() int { return s.state }

// Start schedules the first candidate arrival and the first state switch.
// It is idempotent while running.
func (s *BurstyStream) Start() {
	if s.running || s.peak <= 0 {
		return
	}
	s.running = true
	s.generation++
	s.state = 0
	s.scheduleCandidate(s.generation)
	s.scheduleSwitch(s.generation)
}

// Stop halts future arrivals and switches; already-scheduled events die on
// the generation check.
func (s *BurstyStream) Stop() { s.running = false }

// scheduleCandidate draws the next candidate interarrival at the peak rate
// and thins it by the current state's acceptance probability at fire time.
func (s *BurstyStream) scheduleCandidate(generation uint64) {
	delay := sim.DurationSeconds(s.eng.RNG().Exponential(s.peak))
	sim.Schedule(s.eng, delay, func() {
		if !s.running || generation != s.generation {
			return
		}
		if s.eng.RNG().Bernoulli(s.accat[s.state]) {
			s.arrivals++
			s.fire()
		}
		s.scheduleCandidate(generation)
	})
}

// scheduleSwitch draws the current state's sojourn and flips the state when
// it elapses.
func (s *BurstyStream) scheduleSwitch(generation uint64) {
	delay := sim.DurationSeconds(s.eng.RNG().Exponential(s.sojournRate[s.state]))
	sim.Schedule(s.eng, delay, func() {
		if !s.running || generation != s.generation {
			return
		}
		s.state = 1 - s.state
		s.scheduleSwitch(generation)
	})
}

// DiurnalStream is a non-homogeneous Poisson process whose rate follows a
// periodic phase profile (the mixed-usage "time of day" patterns): phase i
// spans Fraction_i of the period at Multiplier_i times the base rate. Like
// BurstyStream it thins a homogeneous candidate chain at the peak phase
// rate, with the acceptance probability read off the deterministic phase
// schedule at fire time — no extra random draws for phase changes, so the
// trajectory depends only on the site's RNG stream.
type DiurnalStream struct {
	eng    sim.Engine
	peak   float64 // candidate chain rate = base * max multiplier
	period sim.Duration
	// bounds[i] is the end offset of phase i within the period; accept[i]
	// its acceptance probability (multiplier/maxMultiplier).
	bounds []sim.Duration
	accept []float64
	fire   func()

	avgRate    float64
	running    bool
	generation uint64
	arrivals   uint64
}

// NewDiurnalStream builds a diurnal stream with the given time-averaged
// rate. A non-positive average yields a stream that never fires.
func NewDiurnalStream(eng sim.Engine, avgRate float64, a Arrival, fire func()) *DiurnalStream {
	s := &DiurnalStream{eng: eng, period: a.Period, fire: fire}
	avgMult := a.AverageMultiplier()
	if avgRate <= 0 || avgMult <= 0 {
		return s
	}
	peakMult := 0.0
	for _, p := range a.Phases {
		if p.Multiplier > peakMult {
			peakMult = p.Multiplier
		}
	}
	base := avgRate / avgMult
	s.avgRate = avgRate
	s.peak = base * peakMult
	offset := 0.0
	for _, p := range a.Phases {
		offset += p.Fraction
		bound := sim.Duration(math.Round(offset * float64(a.Period)))
		if bound > a.Period {
			bound = a.Period
		}
		s.bounds = append(s.bounds, bound)
		s.accept = append(s.accept, p.Multiplier/peakMult)
	}
	// Guard against fractions summing to 1-epsilon: the last phase always
	// closes the period.
	s.bounds[len(s.bounds)-1] = a.Period
	return s
}

// Rate returns the time-averaged arrival rate.
func (s *DiurnalStream) Rate() float64 { return s.avgRate }

// Arrivals returns how many times the stream has fired.
func (s *DiurnalStream) Arrivals() uint64 { return s.arrivals }

// acceptAt returns the acceptance probability of the phase active at t.
func (s *DiurnalStream) acceptAt(t sim.Time) float64 {
	into := sim.Duration(int64(t) % int64(s.period))
	for i, b := range s.bounds {
		if into < b {
			return s.accept[i]
		}
	}
	return s.accept[len(s.accept)-1]
}

// Start schedules the first candidate arrival. It is idempotent while
// running.
func (s *DiurnalStream) Start() {
	if s.running || s.peak <= 0 {
		return
	}
	s.running = true
	s.generation++
	s.scheduleCandidate(s.generation)
}

// Stop halts future arrivals; already-scheduled ones die on the generation
// check.
func (s *DiurnalStream) Stop() { s.running = false }

// scheduleCandidate draws the next candidate interarrival at the peak rate
// and thins it by the active phase's acceptance probability at fire time.
func (s *DiurnalStream) scheduleCandidate(generation uint64) {
	delay := sim.DurationSeconds(s.eng.RNG().Exponential(s.peak))
	sim.Schedule(s.eng, delay, func() {
		if !s.running || generation != s.generation {
			return
		}
		if s.eng.RNG().Bernoulli(s.acceptAt(s.eng.Now())) {
			s.arrivals++
			s.fire()
		}
		s.scheduleCandidate(generation)
	})
}
