// Package workload implements the request-arrival models of the paper's
// evaluation (Section 6 and Appendix C.2): in every MHP cycle a new CREATE
// request for a random number of pairs is issued with probability
// f·psucc/(E·k), where f sets the offered load, psucc is the per-attempt
// success probability, E the expected cycles per attempt and k the number of
// pairs requested. It also defines the load levels (Low/High/Ultra), the
// origin policies (A, B, random) and the mixed-usage patterns of Appendix
// Table 2.
package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/egp"
	"repro/internal/nv"
	"repro/internal/sim"
)

// LoadLevel is the fraction f determining the offered load.
type LoadLevel float64

// The load levels of the long runs (Section 6).
const (
	LoadLow   LoadLevel = 0.70
	LoadHigh  LoadLevel = 0.99
	LoadUltra LoadLevel = 1.50
)

// String renders the paper's name of a load level (Low, High or Ultra),
// falling back to the numeric fraction for non-standard levels.
func (l LoadLevel) String() string {
	switch l {
	case LoadLow:
		return "Low"
	case LoadHigh:
		return "High"
	case LoadUltra:
		return "Ultra"
	}
	return fmt.Sprintf("f=%.2f", float64(l))
}

// LoadName renders the paper's name of a load level.
func LoadName(l LoadLevel) string { return l.String() }

// Origin selects where CREATE requests originate.
type Origin int

// Origin policies of the fairness study.
const (
	OriginA Origin = iota
	OriginB
	OriginRandom
)

// String renders the origin policy.
func (o Origin) String() string {
	switch o {
	case OriginA:
		return "A"
	case OriginB:
		return "B"
	default:
		return "random"
	}
}

// Class describes the request stream of one use case within a scenario.
type Class struct {
	// Priority selects NL, CK or MD.
	Priority int
	// Fraction is the f_P load fraction of this class.
	Fraction float64
	// MaxPairs is k_max: each request asks for a uniform random number of
	// pairs in [1, MaxPairs].
	MaxPairs int
	// MinFidelity is the requested minimum fidelity (0.64 in the long runs).
	MinFidelity float64
	// MaxTime is the request timeout (0 = none).
	MaxTime sim.Duration
	// FixedPairs, when non-zero, requests exactly this many pairs instead of
	// a random number (used by the Table 1 scheduling study).
	FixedPairs int
}

// Keep reports whether this class issues create-and-keep requests (NL and CK
// store the qubit; MD measures directly).
func (c Class) Keep() bool { return c.Priority != egp.PriorityMD }

// Generator issues random CREATE requests into a core.Network according to a
// set of classes, using the per-cycle arrival model of the paper.
type Generator struct {
	net     *core.Network
	classes []Class
	origin  Origin
	// baseProb[i] is the per-cycle probability of issuing a request of
	// class i (before dividing by the sampled k).
	baseProb []float64

	submitted map[int]int
	stop      func()
}

// NewGenerator builds a workload generator for the given network. The
// per-class arrival probabilities come from the shared arrival model of
// poisson.go, exactly as in Section 6: P(new request of class P with k
// pairs) = f_P·psucc/(E·k).
func NewGenerator(net *core.Network, origin Origin, classes []Class) *Generator {
	g := &Generator{
		net:       net,
		classes:   classes,
		origin:    origin,
		submitted: make(map[int]int),
	}
	feu := net.EGPA.FEU()
	for _, c := range classes {
		g.baseProb = append(g.baseProb, PerCycleProbability(feu, net.Platform, c.Keep(), c.Fraction, c.MinFidelity))
	}
	return g
}

// Start begins issuing requests on every MHP cycle of the network's base
// clock. Call the returned stop function (or Stop) to halt arrivals.
func (g *Generator) Start() (stop func()) {
	period := g.net.Platform.CycleTime[nv.RequestMeasure]
	g.stop = sim.Ticker(g.net.Sim, period, g.tick)
	return g.Stop
}

// Stop halts request arrivals.
func (g *Generator) Stop() {
	if g.stop != nil {
		g.stop()
		g.stop = nil
	}
}

// Submitted returns how many requests have been issued per priority class.
func (g *Generator) Submitted() map[int]int {
	out := make(map[int]int, len(g.submitted))
	for k, v := range g.submitted {
		out[k] = v
	}
	return out
}

// tick runs once per MHP cycle and samples request arrivals for each class.
func (g *Generator) tick() {
	rng := g.net.Sim.RNG()
	for i, c := range g.classes {
		if c.Fraction <= 0 {
			continue
		}
		k := c.FixedPairs
		if k <= 0 {
			k = 1
			if c.MaxPairs > 1 {
				k = 1 + rng.Intn(c.MaxPairs)
			}
		}
		p := g.baseProb[i] / float64(k)
		if !rng.Bernoulli(p) {
			continue
		}
		origin := core.NodeA
		switch g.origin {
		case OriginB:
			origin = core.NodeB
		case OriginRandom:
			if rng.Bernoulli(0.5) {
				origin = core.NodeB
			}
		}
		g.net.Submit(origin, egp.CreateRequest{
			NumPairs:    k,
			Keep:        c.Keep(),
			MinFidelity: c.MinFidelity,
			MaxTime:     c.MaxTime,
			Priority:    c.Priority,
			PurposeID:   uint16(1000 + c.Priority),
			Consecutive: c.Priority == egp.PriorityNL || c.Priority == egp.PriorityMD,
		})
		g.submitted[c.Priority]++
	}
}

// SingleKind returns the class list of a single-kind long run (Section 6):
// one use case at the given load with kmax pairs per request and the fixed
// target fidelity Fmin = 0.64.
func SingleKind(priority int, load LoadLevel, kmax int) []Class {
	return []Class{{
		Priority:    priority,
		Fraction:    float64(load),
		MaxPairs:    kmax,
		MinFidelity: 0.64,
	}}
}

// Pattern names a mixed-usage pattern of Appendix Table 2.
type Pattern string

// The usage patterns of Appendix Table 2.
const (
	PatternUniform    Pattern = "Uniform"
	PatternMoreNL     Pattern = "MoreNL"
	PatternMoreCK     Pattern = "MoreCK"
	PatternMoreMD     Pattern = "MoreMD"
	PatternNoNLMoreCK Pattern = "NoNLMoreCK"
	PatternNoNLMoreMD Pattern = "NoNLMoreMD"
)

// AllPatterns lists the mixed-usage patterns in the order of Appendix C.2.
func AllPatterns() []Pattern {
	return []Pattern{PatternUniform, PatternMoreNL, PatternMoreCK, PatternMoreMD, PatternNoNLMoreCK, PatternNoNLMoreMD}
}

// Mixed returns the class list of a mixed-usage pattern from Appendix
// Table 2. The fidelity target is the long runs' fixed Fmin = 0.64.
func Mixed(p Pattern) []Class {
	const f = 0.99
	mk := func(fNL, fCK, fMD float64, kNL, kCK, kMD int) []Class {
		return []Class{
			{Priority: egp.PriorityNL, Fraction: fNL, MaxPairs: kNL, MinFidelity: 0.64},
			{Priority: egp.PriorityCK, Fraction: fCK, MaxPairs: kCK, MinFidelity: 0.64},
			{Priority: egp.PriorityMD, Fraction: fMD, MaxPairs: kMD, MinFidelity: 0.64},
		}
	}
	switch p {
	case PatternUniform:
		return mk(f/3, f/3, f/3, 1, 1, 1)
	case PatternMoreNL:
		return mk(f*4/6, f/6, f/6, 3, 3, 256)
	case PatternMoreCK:
		return mk(f/6, f*4/6, f/6, 3, 3, 256)
	case PatternMoreMD:
		return mk(f/6, f/6, f*4/6, 3, 3, 256)
	case PatternNoNLMoreCK:
		return mk(0, f*4/5, f/5, 3, 3, 256)
	case PatternNoNLMoreMD:
		return mk(0, f/5, f*4/5, 3, 3, 256)
	default:
		panic("workload: unknown pattern " + string(p))
	}
}

// Table1Pattern returns the class lists of the two request patterns of
// Table 1: (i) uniform load across NL/CK/MD with 2/2/10 pairs per request,
// and (ii) no NL with more MD.
func Table1Pattern(uniform bool) []Class {
	const f = 0.99
	if uniform {
		return []Class{
			{Priority: egp.PriorityNL, Fraction: f / 3, FixedPairs: 2, MinFidelity: 0.64},
			{Priority: egp.PriorityCK, Fraction: f / 3, FixedPairs: 2, MinFidelity: 0.64},
			{Priority: egp.PriorityMD, Fraction: f / 3, FixedPairs: 10, MinFidelity: 0.64},
		}
	}
	return []Class{
		{Priority: egp.PriorityCK, Fraction: f / 5, FixedPairs: 2, MinFidelity: 0.64},
		{Priority: egp.PriorityMD, Fraction: f * 4 / 5, FixedPairs: 10, MinFidelity: 0.64},
	}
}
