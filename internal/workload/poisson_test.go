package workload

import (
	"math"
	"testing"

	"repro/internal/egp"
	"repro/internal/nv"
	"repro/internal/photonics"
	"repro/internal/sim"
)

// TestPoissonStreamGoldenSequence pins the exact arrival sequence of the
// shared Poisson implementation for a fixed seed, so refactors that would
// silently change the arrival statistics of every consumer (workload and
// netsim alike) fail here first.
func TestPoissonStreamGoldenSequence(t *testing.T) {
	s := sim.New(7)
	var got []sim.Time
	stream := NewPoissonStream(s, 1000, func() { got = append(got, s.Now()) })
	stream.Start()
	_ = s.RunFor(10 * sim.Millisecond)

	want := []sim.Time{golden0, golden1, golden2, golden3, golden4, golden5}
	if len(got) < len(want) {
		t.Fatalf("only %d arrivals in 10ms at rate 1000/s: %v", len(got), got)
	}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("arrival %d = %d ns, want %d ns (full: %v)", i, got[i], w, got[:len(want)])
		}
	}
	if stream.Arrivals() != uint64(len(got)) {
		t.Fatalf("Arrivals() = %d, fired %d", stream.Arrivals(), len(got))
	}
}

// Golden arrival times (nanoseconds) for seed 7 at rate 1000/s, recorded from
// the shared implementation.
const (
	golden0 = sim.Time(833525)
	golden1 = sim.Time(1642141)
	golden2 = sim.Time(1938926)
	golden3 = sim.Time(3450171)
	golden4 = sim.Time(4697035)
	golden5 = sim.Time(5285781)
)

// TestPoissonStreamRestart checks the generation guard: stopping and
// restarting must not double the arrival chain.
func TestPoissonStreamRestart(t *testing.T) {
	s := sim.New(3)
	fired := 0
	stream := NewPoissonStream(s, 10000, func() { fired++ })
	stream.Start()
	_ = s.RunFor(2 * sim.Millisecond)
	stream.Stop()
	stream.Start()
	_ = s.RunFor(20 * sim.Millisecond)
	stream.Stop()
	_ = s.Run() // drain stale events; none may fire

	// With a doubled chain the count would be ~2x the expected ~220; allow a
	// generous band around the single-chain expectation.
	if fired < 120 || fired > 350 {
		t.Fatalf("restart produced %d arrivals, outside single-chain band", fired)
	}
}

// TestArrivalModelMatchesPaperFormula checks PerCycleProbability and
// RatePerSecond against the inline formulas they replaced (f·psucc/E and
// f·psucc/(E·cycleTime·k̄)) on both hardware scenarios.
func TestArrivalModelMatchesPaperFormula(t *testing.T) {
	for _, sc := range []nv.ScenarioID{nv.ScenarioLab, nv.ScenarioQL2020} {
		platform := nv.NewPlatform(sc)
		feu := egp.NewFEU(platform, photonics.NewLinkSampler(platform.Optics))
		const load, fmin, meanPairs = 0.7, 0.64, 1.5
		for _, keep := range []bool{false, true} {
			alpha, ok := feu.AlphaForFidelity(fmin)
			if !ok {
				t.Fatalf("%s: Fmin %g infeasible", sc, fmin)
			}
			psucc := feu.SuccessProbability(alpha)
			rt := nv.RequestMeasure
			if keep {
				rt = nv.RequestKeep
			}
			e := platform.ExpectedCyclesPerAttempt[rt]
			if e < 1 {
				e = 1
			}
			wantProb := load * psucc / e
			if got := PerCycleProbability(feu, platform, keep, load, fmin); math.Abs(got-wantProb) > 1e-15 {
				t.Errorf("%s keep=%v: PerCycleProbability = %g, want %g", sc, keep, got, wantProb)
			}
			wantRate := wantProb / (platform.CycleTime[nv.RequestMeasure].Seconds() * meanPairs)
			if got := RatePerSecond(feu, platform, keep, load, fmin, meanPairs); math.Abs(got-wantRate) > 1e-9 {
				t.Errorf("%s keep=%v: RatePerSecond = %g, want %g", sc, keep, got, wantRate)
			}
		}
	}
	// Infeasible fidelity and zero load must yield silent zero rates.
	platform := nv.NewPlatform(nv.ScenarioLab)
	feu := egp.NewFEU(platform, photonics.NewLinkSampler(platform.Optics))
	if got := PerCycleProbability(feu, platform, false, 0.7, 0.999); got != 0 {
		t.Errorf("infeasible fidelity: PerCycleProbability = %g, want 0", got)
	}
	if got := RatePerSecond(feu, platform, false, 0, 0.64, 1); got != 0 {
		t.Errorf("zero load: RatePerSecond = %g, want 0", got)
	}
}
