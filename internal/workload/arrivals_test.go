package workload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/egp"
	"repro/internal/sim"
)

// TestBurstyStreamAverageRate checks the thinning construction: whatever the
// burst shape, the time-averaged arrival rate must track the configured
// average (the candidate chain runs at the peak rate and acceptance exactly
// compensates).
func TestBurstyStreamAverageRate(t *testing.T) {
	s := sim.New(9)
	a := Arrival{
		Kind:            ArrivalBursty,
		Load:            0.5, // carried by the spec; the stream takes the resolved rate below
		BurstMultiplier: 8,
		MeanBurst:       50 * sim.Millisecond,
		MeanIdle:        450 * sim.Millisecond,
	}
	const avgRate = 2000.0
	stream := NewBurstyStream(s, avgRate, a, func() {})
	if got := stream.Rate(); got != avgRate {
		t.Fatalf("Rate() = %g, want %g", got, avgRate)
	}
	stream.Start()
	const seconds = 20.0
	_ = s.RunFor(sim.DurationSeconds(seconds))
	got := float64(stream.Arrivals()) / seconds
	if math.Abs(got-avgRate)/avgRate > 0.1 {
		t.Fatalf("bursty stream averaged %.0f arrivals/s over %gs, want ~%g", got, seconds, avgRate)
	}
}

// TestBurstyStreamModulates checks that the burst state actually raises the
// instantaneous rate: with long sojourns the arrivals seen while the stream
// reports the burst state must be far denser than in the idle state.
func TestBurstyStreamModulates(t *testing.T) {
	s := sim.New(4)
	a := Arrival{
		Kind:            ArrivalBursty,
		BurstMultiplier: 10,
		MeanBurst:       200 * sim.Millisecond,
		MeanIdle:        200 * sim.Millisecond,
	}
	var inBurst, inIdle uint64
	var stream *BurstyStream
	stream = NewBurstyStream(s, 1000, a, func() {
		if stream.State() == 1 {
			inBurst++
		} else {
			inIdle++
		}
	})
	stream.Start()
	_ = s.RunFor(sim.DurationSeconds(10))
	if inBurst == 0 || inIdle == 0 {
		t.Fatalf("both states must see arrivals, got burst=%d idle=%d", inBurst, inIdle)
	}
	// Equal sojourns at multiplier 10: the burst state should carry roughly
	// 10x the idle arrivals; 3x is a loose floor.
	if float64(inBurst) < 3*float64(inIdle) {
		t.Fatalf("burst state not denser than idle: burst=%d idle=%d", inBurst, inIdle)
	}
}

// TestDiurnalStreamFollowsPhases checks the phase schedule: a silent phase
// (multiplier 0) must see no arrivals, and the loaded phases must track
// their multipliers.
func TestDiurnalStreamFollowsPhases(t *testing.T) {
	s := sim.New(12)
	period := sim.DurationSeconds(1)
	a := Arrival{
		Kind:   ArrivalDiurnal,
		Period: period,
		Phases: []Phase{
			{Fraction: 0.5, Multiplier: 0},
			{Fraction: 0.5, Multiplier: 2},
		},
	}
	counts := [2]uint64{}
	stream := NewDiurnalStream(s, 1000, a, func() {
		into := int64(s.Now()) % int64(period)
		if into < int64(period)/2 {
			counts[0]++
		} else {
			counts[1]++
		}
	})
	stream.Start()
	const seconds = 10.0
	_ = s.RunFor(sim.DurationSeconds(seconds))
	if counts[0] != 0 {
		t.Fatalf("silent phase saw %d arrivals", counts[0])
	}
	// All arrivals land in the second half; the time average must still be
	// the configured 1000/s.
	got := float64(counts[1]) / seconds
	if math.Abs(got-1000)/1000 > 0.1 {
		t.Fatalf("diurnal stream averaged %.0f arrivals/s, want ~1000", got)
	}
}

// TestNewProcessDispatch checks the factory contract: kinds map to their
// stream types, closed-loop maps to nil, and a non-positive rate never
// fires.
func TestNewProcessDispatch(t *testing.T) {
	s := sim.New(1)
	bursty := Arrival{Kind: ArrivalBursty, BurstMultiplier: 2, MeanBurst: sim.Second, MeanIdle: sim.Second}
	if _, ok := NewProcess(s, 1, bursty, func() {}).(*BurstyStream); !ok {
		t.Error("bursty kind did not build a BurstyStream")
	}
	diurnal := Arrival{Kind: ArrivalDiurnal, Period: sim.Second, Phases: []Phase{{Fraction: 1, Multiplier: 1}}}
	if _, ok := NewProcess(s, 1, diurnal, func() {}).(*DiurnalStream); !ok {
		t.Error("diurnal kind did not build a DiurnalStream")
	}
	if _, ok := NewProcess(s, 1, Arrival{Kind: ArrivalPoisson}, func() {}).(*PoissonStream); !ok {
		t.Error("poisson kind did not build a PoissonStream")
	}
	if p := NewProcess(s, 1, Arrival{Kind: ArrivalClosed}, func() {}); p != nil {
		t.Error("closed kind must return nil (sessions are service-driven)")
	}

	dead := NewProcess(s, 0, bursty, func() { t.Error("zero-rate process fired") })
	dead.Start()
	_ = s.RunFor(sim.DurationSeconds(1))
}

// TestArrivalValidation sweeps the arrival and class validation rules.
func TestArrivalValidation(t *testing.T) {
	valid := ClassSpec{
		Name:     "ok",
		Priority: egp.PriorityMD,
		Arrival:  Arrival{Kind: ArrivalPoisson, Load: 0.5},
		MinPairs: 1, MaxPairs: 2,
		MinFidelity: 0.64,
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid class rejected: %v", err)
	}

	cases := []struct {
		label  string
		mutate func(*ClassSpec)
		want   string
	}{
		{"no name", func(c *ClassSpec) { c.Name = "" }, "name"},
		{"bad priority", func(c *ClassSpec) { c.Priority = 9 }, "priority"},
		{"bad pair range", func(c *ClassSpec) { c.MinPairs = 3; c.MaxPairs = 1 }, "pair range"},
		{"bad fidelity", func(c *ClassSpec) { c.MinFidelity = 1.5 }, "fidelity"},
		{"negative deadline", func(c *ClassSpec) { c.Deadline = -1 }, "deadline"},
		{"no intensity", func(c *ClassSpec) { c.Arrival.Load = 0 }, "intensity"},
		{"two intensities", func(c *ClassSpec) { c.Arrival.Users = 5; c.Arrival.PerUserRate = 1 }, "intensity"},
		{"sessions on open loop", func(c *ClassSpec) { c.Arrival.Sessions = 3 }, "closed-loop"},
		{"unknown kind", func(c *ClassSpec) { c.Arrival.Kind = "fractal" }, "unknown arrival kind"},
		{"bursty multiplier", func(c *ClassSpec) {
			c.Arrival.Kind = ArrivalBursty
			c.Arrival.BurstMultiplier = 0.5
			c.Arrival.MeanBurst, c.Arrival.MeanIdle = sim.Second, sim.Second
		}, "burst_multiplier"},
		{"bursty sojourns", func(c *ClassSpec) {
			c.Arrival.Kind = ArrivalBursty
			c.Arrival.BurstMultiplier = 2
		}, "sojourn"},
		{"diurnal fractions", func(c *ClassSpec) {
			c.Arrival.Kind = ArrivalDiurnal
			c.Arrival.Period = sim.Second
			c.Arrival.Phases = []Phase{{Fraction: 0.5, Multiplier: 1}}
		}, "sum to 1"},
		{"diurnal all silent", func(c *ClassSpec) {
			c.Arrival.Kind = ArrivalDiurnal
			c.Arrival.Period = sim.Second
			c.Arrival.Phases = []Phase{{Fraction: 1, Multiplier: 0}}
		}, "positive multiplier"},
		{"closed needs sessions", func(c *ClassSpec) {
			c.Arrival = Arrival{Kind: ArrivalClosed, ThinkTime: sim.Second}
		}, "sessions"},
		{"closed needs think time", func(c *ClassSpec) {
			c.Arrival = Arrival{Kind: ArrivalClosed, Sessions: 3}
		}, "think_time"},
	}
	for _, tc := range cases {
		c := valid
		tc.mutate(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.label)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.label, err, tc.want)
		}
	}
}

// TestAverageMultiplier pins the time-average algebra the thinning streams
// rely on.
func TestAverageMultiplier(t *testing.T) {
	bursty := Arrival{Kind: ArrivalBursty, BurstMultiplier: 9, MeanBurst: sim.Second, MeanIdle: 3 * sim.Second}
	if got, want := bursty.AverageMultiplier(), 3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("bursty average multiplier = %g, want %g", got, want)
	}
	diurnal := Arrival{Kind: ArrivalDiurnal, Phases: []Phase{
		{Fraction: 0.25, Multiplier: 0},
		{Fraction: 0.75, Multiplier: 2},
	}}
	if got, want := diurnal.AverageMultiplier(), 1.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("diurnal average multiplier = %g, want %g", got, want)
	}
	if got := (Arrival{Kind: ArrivalPoisson}).AverageMultiplier(); got != 1 {
		t.Errorf("poisson average multiplier = %g, want 1", got)
	}
}

// TestBuildSLO checks the report algebra: throughput, timeout rate,
// percentiles and the starvation flag.
func TestBuildSLO(t *testing.T) {
	classes := []ClassSpec{
		{Name: "served", Priority: egp.PriorityMD},
		{Name: "starved", Priority: egp.PriorityNL},
	}
	served := &ClassAccount{Offered: 10, Pairs: 20, Completed: 6, TimedOut: 2}
	for i := 1; i <= 100; i++ {
		served.TTP.Add(float64(i) / 100)
	}
	starved := &ClassAccount{Offered: 5}
	slos := BuildSLO(classes, []*ClassAccount{served, starved}, []float64{0, 1.25}, 2)

	s := slos[0]
	if s.Throughput != 10 {
		t.Errorf("throughput = %g, want 10 pairs/s", s.Throughput)
	}
	if s.TimeoutRate != 0.25 {
		t.Errorf("timeout rate = %g, want 0.25", s.TimeoutRate)
	}
	if s.TTPP50 != 0.5 || s.TTPP99 != 0.99 {
		t.Errorf("TTP percentiles = %g/%g, want 0.5/0.99", s.TTPP50, s.TTPP99)
	}
	if s.Outstanding != 2 {
		t.Errorf("outstanding = %d, want 2", s.Outstanding)
	}
	if s.Starved {
		t.Error("served class flagged as starved")
	}
	if !slos[1].Starved {
		t.Error("starved class not flagged")
	}
	if slos[1].OldestWaitSeconds != 1.25 {
		t.Errorf("oldest wait = %g, want 1.25", slos[1].OldestWaitSeconds)
	}
	if got := len(slos[0].Row()); got != len(SLOColumns) {
		t.Errorf("Row has %d cells for %d columns", got, len(SLOColumns))
	}
}
