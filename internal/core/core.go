// Package core composes the full quantum link layer system of the paper: two
// controllable NV nodes (A and B), the automated heralding station between
// them, the optical and classical channels connecting them, the physical
// layer MHP instances and the link layer EGP instances — all running on one
// deterministic discrete-event simulator.
//
// It is the package a downstream user interacts with: build a Network for
// one of the evaluated scenarios (Lab or QL2020), submit CREATE requests
// from either node, run simulated time, and read the delivered OKs and the
// aggregated performance metrics.
package core

import (
	"fmt"

	"repro/internal/classical"
	"repro/internal/egp"
	"repro/internal/metrics"
	"repro/internal/mhp"
	"repro/internal/nv"
	"repro/internal/photonics"
	"repro/internal/quantum"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Node identifiers used throughout the evaluation.
const (
	NodeA = "A"
	NodeB = "B"
	// NodeIDA and NodeIDB are the wire-level node identifiers.
	NodeIDA uint32 = 1
	NodeIDB uint32 = 2
)

// Config selects the hardware scenario and protocol options of one network
// instance.
type Config struct {
	// Scenario selects the hardware model: nv.ScenarioLab or
	// nv.ScenarioQL2020.
	Scenario nv.ScenarioID
	// Backend selects the pair-state representation (dense, the zero
	// value, or the Bell-diagonal fast path).
	Backend quantum.Backend
	// Seed drives every random choice of the run.
	Seed int64
	// Scheduler names the EGP scheduling strategy: "FCFS", "LowerWFQ" or
	// "HigherWFQ".
	Scheduler string
	// ClassicalLossProb is the per-frame loss probability applied to every
	// classical channel (the robustness-study knob; realistic deployments
	// are < 4×10⁻⁸).
	ClassicalLossProb float64
	// EmissionMultiplexing allows measure-directly attempts to overlap with
	// outstanding midpoint replies.
	EmissionMultiplexing bool
	// MaxQueueLen bounds each distributed-queue lane (default 256).
	MaxQueueLen int
	// StorageMargin is the fidelity head-room the FEU reserves for storage
	// and readout noise when converting Fmin to generation parameters.
	StorageMargin float64
	// MinTimeMarginCycles widens the min_time guard before new requests may
	// be served (ablation knob; default 0 uses the propagation-derived
	// value).
	MinTimeMarginCycles uint64
	// DisableMinTime removes the min_time guard entirely (ablation knob).
	DisableMinTime bool
	// QueueWindow is the DQP fairness window.
	QueueWindow int
	// HoldPairs keeps delivered K pairs in memory instead of releasing them
	// to the application immediately (models the CK use case holding
	// entanglement).
	HoldPairs bool
}

// DefaultConfig returns the configuration used by most experiments: the
// given scenario, FCFS scheduling, no classical losses, emission
// multiplexing on.
func DefaultConfig(scenario nv.ScenarioID) Config {
	return Config{
		Scenario:             scenario,
		Seed:                 1,
		Scheduler:            "FCFS",
		Backend:              quantum.BackendFromEnv(),
		EmissionMultiplexing: true,
		MaxQueueLen:          256,
		StorageMargin:        0.05,
	}
}

// Network is a fully wired two-node quantum link.
type Network struct {
	Config   Config
	Sim      *sim.Simulator
	Platform *nv.Platform

	DeviceA *nv.Device
	DeviceB *nv.Device
	Sampler *photonics.LinkSampler

	EGPA *egp.EGP
	EGPB *egp.EGP
	MHPA *mhp.Node
	MHPB *mhp.Node
	Mid  *mhp.Midpoint

	Registry *mhp.PairRegistry

	Collector *metrics.Collector

	// Channels, exposed so experiments can adjust loss probabilities
	// mid-run.
	ChanAtoH *classical.Channel
	ChanHtoA *classical.Channel
	ChanBtoH *classical.Channel
	ChanHtoB *classical.Channel
	PeerLink *classical.Duplex

	// OKs collects every OK event delivered to the higher layer at either
	// node, in delivery order.
	OKs []egp.OKEvent
	// Errors collects request failures.
	Errors []egp.ErrorEvent

	// pendingMeasure matches the two sides' measure-directly outcomes by
	// entanglement ID for QBER accounting.
	pendingMeasure map[uint16]egp.OKEvent

	stopA func()
	stopB func()

	started bool
}

// requestKey builds a collector key unique across both origins.
func requestKey(origin string, createID uint16) uint64 {
	if origin == NodeB {
		return 1<<32 | uint64(createID)
	}
	return uint64(createID)
}

// NewNetwork builds and wires a network for the given configuration. Call
// Start before (or after) submitting requests, then Run to advance simulated
// time.
func NewNetwork(cfg Config) *Network {
	if cfg.MaxQueueLen <= 0 {
		cfg.MaxQueueLen = 256
	}
	platform := nv.NewPlatform(cfg.Scenario)
	s := sim.New(cfg.Seed)
	sampler := photonics.NewLinkSamplerBackend(platform.Optics, cfg.Backend)
	registry := mhp.NewPairRegistry()

	n := &Network{
		Config:         cfg,
		Sim:            s,
		Platform:       platform,
		Sampler:        sampler,
		Registry:       registry,
		Collector:      metrics.NewCollector(0),
		pendingMeasure: make(map[uint16]egp.OKEvent),
	}
	n.DeviceA = nv.NewDevice("A", platform.Gates, platform.CarbonCoupling, platform.MemoryQubits)
	n.DeviceB = nv.NewDevice("B", platform.Gates, platform.CarbonCoupling, platform.MemoryQubits)

	// Classical / optical signalling channels. Node↔midpoint channels carry
	// the GEN/REPLY exchange; the node↔node duplex carries DQP and EGP
	// messages. Both use the configured loss probability.
	loss := cfg.ClassicalLossProb
	n.ChanAtoH = classical.NewChannel("A->H", s, platform.CommDelayAH, loss, func(m classical.Message) { n.Mid.HandleGEN(m) })
	n.ChanBtoH = classical.NewChannel("B->H", s, platform.CommDelayBH, loss, func(m classical.Message) { n.Mid.HandleGEN(m) })
	n.ChanHtoA = classical.NewChannel("H->A", s, platform.CommDelayAH, loss, func(m classical.Message) { n.MHPA.HandleReply(m) })
	n.ChanHtoB = classical.NewChannel("H->B", s, platform.CommDelayBH, loss, func(m classical.Message) { n.MHPB.HandleReply(m) })
	peerDelay := platform.CommDelayAH + platform.CommDelayBH
	n.PeerLink = classical.NewDuplex("A<->B", s, peerDelay, loss,
		func(m classical.Message) { n.EGPB.HandlePeerMessage(m) },
		func(m classical.Message) { n.EGPA.HandlePeerMessage(m) })

	// Link layer instances.
	minTimeMargin := cfg.MinTimeMarginCycles
	n.EGPA = egp.New(egp.Config{
		NodeName:             NodeA,
		NodeID:               NodeIDA,
		PeerID:               NodeIDB,
		IsMaster:             true,
		Sim:                  s,
		Platform:             platform,
		Device:               n.DeviceA,
		Sampler:              sampler,
		Registry:             registry,
		Side:                 nv.SideA,
		Scheduler:            egp.NewScheduler(cfg.Scheduler),
		ToPeer:               n.PeerLink.AtoB,
		OnOK:                 func(ev egp.OKEvent) { n.handleOK(ev) },
		OnError:              func(ev egp.ErrorEvent) { n.handleError(ev) },
		OnExpire:             func(ev egp.ExpireEvent) { n.Collector.ExpireIssued() },
		MaxQueueLen:          cfg.MaxQueueLen,
		QueueWindow:          cfg.QueueWindow,
		EmissionMultiplexing: cfg.EmissionMultiplexing,
		AutoRelease:          !cfg.HoldPairs,
		MinTimeMarginCycles:  minTimeMargin,
	})
	n.EGPB = egp.New(egp.Config{
		NodeName:             NodeB,
		NodeID:               NodeIDB,
		PeerID:               NodeIDA,
		IsMaster:             false,
		Sim:                  s,
		Platform:             platform,
		Device:               n.DeviceB,
		Sampler:              sampler,
		Registry:             registry,
		Side:                 nv.SideB,
		Scheduler:            egp.NewScheduler(cfg.Scheduler),
		ToPeer:               n.PeerLink.BtoA,
		OnOK:                 func(ev egp.OKEvent) { n.handleOK(ev) },
		OnError:              func(ev egp.ErrorEvent) { n.handleError(ev) },
		OnExpire:             func(ev egp.ExpireEvent) { n.Collector.ExpireIssued() },
		MaxQueueLen:          cfg.MaxQueueLen,
		QueueWindow:          cfg.QueueWindow,
		EmissionMultiplexing: cfg.EmissionMultiplexing,
		AutoRelease:          !cfg.HoldPairs,
		MinTimeMarginCycles:  minTimeMargin,
	})
	if cfg.StorageMargin > 0 {
		n.EGPA.FEU().SetStorageMargin(cfg.StorageMargin)
		n.EGPB.FEU().SetStorageMargin(cfg.StorageMargin)
	}

	// Physical layer instances.
	n.MHPA = mhp.NewNode(mhp.NodeConfig{
		Name:       NodeA,
		Sim:        s,
		Generator:  n.EGPA,
		Device:     n.DeviceA,
		Registry:   registry,
		Side:       nv.SideA,
		ToMidpoint: n.ChanAtoH,
		CycleTimeK: platform.CycleTime[nv.RequestKeep],
		CycleTimeM: platform.CycleTime[nv.RequestMeasure],
	})
	n.MHPB = mhp.NewNode(mhp.NodeConfig{
		Name:       NodeB,
		Sim:        s,
		Generator:  n.EGPB,
		Device:     n.DeviceB,
		Registry:   registry,
		Side:       nv.SideB,
		ToMidpoint: n.ChanBtoH,
		CycleTimeK: platform.CycleTime[nv.RequestKeep],
		CycleTimeM: platform.CycleTime[nv.RequestMeasure],
	})
	n.Mid = mhp.NewMidpoint(mhp.MidpointConfig{
		Sim:          s,
		Sampler:      sampler,
		Registry:     registry,
		ToA:          n.ChanHtoA,
		ToB:          n.ChanHtoB,
		WindowCycles: 1,
		// Unmatched GENs wait at the station long enough to cover the
		// propagation asymmetry between the two arms plus jitter.
		HoldTime: 2*(platform.CommDelayAH+platform.CommDelayBH) + 200*sim.Microsecond,
	})
	return n
}

// Start launches the periodic MHP cycles at both nodes. It is idempotent.
func (n *Network) Start() {
	if n.started {
		return
	}
	n.started = true
	n.stopA = n.MHPA.Start()
	n.stopB = n.MHPB.Start()
}

// Stop halts the MHP cycles (the simulator can still drain in-flight
// events).
func (n *Network) Stop() {
	if n.stopA != nil {
		n.stopA()
	}
	if n.stopB != nil {
		n.stopB()
	}
	n.started = false
}

// Run advances the simulation by d of simulated time.
func (n *Network) Run(d sim.Duration) {
	n.Start()
	_ = n.Sim.RunFor(d)
	n.Collector.Finish(n.Sim.Now())
}

// EGPFor returns the EGP instance at the named node.
func (n *Network) EGPFor(origin string) *egp.EGP {
	if origin == NodeB {
		return n.EGPB
	}
	return n.EGPA
}

// Submit issues a CREATE request from the higher layer at the given origin
// node ("A" or "B"). It returns the assigned create ID and the immediate
// response code (wire.ErrNone when the request entered the distributed
// queue).
func (n *Network) Submit(origin string, req egp.CreateRequest) (uint16, wire.EGPError) {
	e := n.EGPFor(origin)
	id, code := e.Create(req)
	key := requestKey(origin, id)
	if code == wire.ErrNone {
		n.Collector.RequestSubmitted(key, req.Priority, origin, req.NumPairs, n.Sim.Now())
	}
	return id, code
}

// SetClassicalLoss changes the frame loss probability of every classical
// channel (used by the robustness experiments).
func (n *Network) SetClassicalLoss(p float64) {
	n.ChanAtoH.SetLossProbability(p)
	n.ChanBtoH.SetLossProbability(p)
	n.ChanHtoA.SetLossProbability(p)
	n.ChanHtoB.SetLossProbability(p)
	n.PeerLink.SetLossProbability(p)
}

// SampleQueueLength records the current total distributed-queue length into
// the collector (called periodically by experiments).
func (n *Network) SampleQueueLength() {
	n.Collector.SampleQueueLength(n.EGPA.Queue().TotalLen())
}

// handleOK processes an OK event from either node: it archives it, feeds the
// metrics collector (from the origin side only, so requests are not double
// counted) and matches measure-directly outcomes for QBER accounting.
func (n *Network) handleOK(ev egp.OKEvent) {
	n.OKs = append(n.OKs, ev)
	if ev.OriginIsLocal {
		key := requestKey(ev.Node, ev.CreateID)
		n.Collector.PairDelivered(key, ev.Priority, ev.Node, ev.Fidelity, ev.At)
		if ev.RequestDone {
			n.Collector.RequestCompleted(key, ev.At)
		}
	}
	if !ev.Keep {
		n.matchMeasurement(ev)
	}
}

// matchMeasurement pairs up the two nodes' outcomes for the same entangled
// pair and records the correlation (QBER) when the bases agree.
func (n *Network) matchMeasurement(ev egp.OKEvent) {
	other, ok := n.pendingMeasure[ev.EntanglementID]
	if !ok {
		n.pendingMeasure[ev.EntanglementID] = ev
		return
	}
	delete(n.pendingMeasure, ev.EntanglementID)
	if other.Node == ev.Node {
		return
	}
	if other.MeasureBasis != ev.MeasureBasis {
		return
	}
	var a, b egp.OKEvent
	if ev.Node == NodeA {
		a, b = ev, other
	} else {
		a, b = other, ev
	}
	outcomeA := a.MeasureOutcome
	// Classical correction: a |Ψ−⟩ herald differs from |Ψ+⟩ by a Z on one
	// qubit, which flips the correlation sign in the X and Y bases. Flip one
	// side's outcome so all correlations are accounted against the |Ψ+⟩
	// pattern (Eq. 13).
	if ev.HeraldedPsiMinus && ev.MeasureBasis != quantum.BasisZ {
		outcomeA = 1 - outcomeA
	}
	n.Collector.RecordQBER(ev.Priority, int(ev.MeasureBasis), outcomeA, b.MeasureOutcome)
	n.EGPA.FEU().RecordTestOutcome(int(ev.MeasureBasis), outcomeA, b.MeasureOutcome)
	n.EGPB.FEU().RecordTestOutcome(int(ev.MeasureBasis), outcomeA, b.MeasureOutcome)
}

// handleError archives and accounts request failures (origin side only).
func (n *Network) handleError(ev egp.ErrorEvent) {
	n.Errors = append(n.Errors, ev)
	key := requestKey(ev.Node, ev.CreateID)
	n.Collector.RequestFailed(key, ev.Code.String(), ev.At)
}

// Describe returns a short human-readable summary of the configuration.
func (n *Network) Describe() string {
	return fmt.Sprintf("%s scheduler=%s loss=%g seed=%d", n.Config.Scenario, n.Config.Scheduler, n.Config.ClassicalLossProb, n.Config.Seed)
}
