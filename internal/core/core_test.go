package core

import (
	"math"
	"testing"

	"repro/internal/egp"
	"repro/internal/nv"
	"repro/internal/sim"
	"repro/internal/wire"
)

// submitAt schedules a request submission at a given simulated time.
func submitAt(n *Network, at sim.Duration, origin string, req egp.CreateRequest) {
	sim.Schedule(n.Sim, at, func() { n.Submit(origin, req) })
}

func TestLabMeasureDirectlyDeliversPairs(t *testing.T) {
	cfg := DefaultConfig(nv.ScenarioLab)
	cfg.Seed = 7
	n := NewNetwork(cfg)
	submitAt(n, 0, NodeA, egp.CreateRequest{
		NumPairs:    5,
		Keep:        false,
		MinFidelity: 0.6,
		Priority:    egp.PriorityMD,
		PurposeID:   1,
	})
	n.Run(3 * sim.Second)

	if len(n.OKs) == 0 {
		t.Fatal("no OKs delivered for an MD request in 3 s of Lab time")
	}
	// The origin node should have recorded 5 delivered pairs and completed
	// the request.
	if got := n.Collector.OKCount(egp.PriorityMD); got != 5 {
		t.Fatalf("expected 5 MD pairs at the origin, got %d", got)
	}
	if n.Collector.RequestLatency(egp.PriorityMD).Count() != 1 {
		t.Fatal("request should have completed")
	}
	if n.Collector.OutstandingRequests() != 0 {
		t.Fatal("no requests should remain outstanding")
	}
	// Both nodes deliver OKs (the peer also passes entanglement upwards).
	var fromA, fromB int
	for _, ok := range n.OKs {
		if ok.Node == NodeA {
			fromA++
		} else {
			fromB++
		}
		if ok.Keep {
			t.Fatal("MD request should produce measure OKs")
		}
		if ok.MeasureOutcome != 0 && ok.MeasureOutcome != 1 {
			t.Fatalf("invalid measurement outcome %d", ok.MeasureOutcome)
		}
	}
	if fromA == 0 || fromB == 0 {
		t.Fatalf("both nodes should issue OKs, got A=%d B=%d", fromA, fromB)
	}
}

func TestLabKeepDeliversEntangledPairs(t *testing.T) {
	cfg := DefaultConfig(nv.ScenarioLab)
	cfg.Seed = 11
	n := NewNetwork(cfg)
	submitAt(n, 0, NodeA, egp.CreateRequest{
		NumPairs:    3,
		Keep:        true,
		MinFidelity: 0.6,
		Priority:    egp.PriorityCK,
		PurposeID:   2,
	})
	n.Run(4 * sim.Second)

	if got := n.Collector.OKCount(egp.PriorityCK); got != 3 {
		t.Fatalf("expected 3 CK pairs, got %d", got)
	}
	fid := n.Collector.Fidelity(egp.PriorityCK)
	if fid.Count() != 3 {
		t.Fatalf("expected 3 fidelity samples, got %d", fid.Count())
	}
	if fid.Mean() < 0.6 {
		t.Fatalf("mean delivered fidelity %v below the requested minimum", fid.Mean())
	}
	if fid.Mean() > 0.95 {
		t.Fatalf("mean delivered fidelity %v implausibly high for this hardware", fid.Mean())
	}
	// K pairs report where the qubit was stored.
	sawMemory := false
	for _, ok := range n.OKs {
		if ok.Keep && ok.LogicalQubit != nv.CommQubitID {
			sawMemory = true
		}
	}
	if !sawMemory {
		t.Fatal("expected at least one pair moved to a memory qubit")
	}
}

func TestRequestFromSlaveNode(t *testing.T) {
	cfg := DefaultConfig(nv.ScenarioLab)
	cfg.Seed = 13
	n := NewNetwork(cfg)
	submitAt(n, 0, NodeB, egp.CreateRequest{
		NumPairs:    2,
		Keep:        false,
		MinFidelity: 0.6,
		Priority:    egp.PriorityMD,
	})
	n.Run(3 * sim.Second)
	if got := n.Collector.OKCount(egp.PriorityMD); got != 2 {
		t.Fatalf("expected 2 pairs for a slave-originated request, got %d", got)
	}
	// The origin-side metrics must be attributed to B.
	if n.Collector.PairsByOrigin()[NodeB] != 2 {
		t.Fatalf("pairs should be attributed to origin B: %v", n.Collector.PairsByOrigin())
	}
}

func TestUnsupportedFidelityRejected(t *testing.T) {
	cfg := DefaultConfig(nv.ScenarioLab)
	n := NewNetwork(cfg)
	n.Start()
	_, code := n.Submit(NodeA, egp.CreateRequest{
		NumPairs:    1,
		Keep:        true,
		MinFidelity: 0.99, // unreachable on this hardware
		Priority:    egp.PriorityCK,
	})
	if code != wire.ErrUnsupported {
		t.Fatalf("expected UNSUPP, got %v", code)
	}
	if len(n.Errors) != 1 || n.Errors[0].Code != wire.ErrUnsupported {
		t.Fatalf("expected an UNSUPP error event, got %+v", n.Errors)
	}
}

func TestUnsupportedTimeRejected(t *testing.T) {
	cfg := DefaultConfig(nv.ScenarioLab)
	n := NewNetwork(cfg)
	n.Start()
	_, code := n.Submit(NodeA, egp.CreateRequest{
		NumPairs:    100,
		Keep:        true,
		MinFidelity: 0.6,
		MaxTime:     1 * sim.Millisecond, // impossible deadline
		Priority:    egp.PriorityCK,
	})
	if code != wire.ErrUnsupported {
		t.Fatalf("expected UNSUPP for impossible deadline, got %v", code)
	}
}

func TestAtomicMemoryExceeded(t *testing.T) {
	cfg := DefaultConfig(nv.ScenarioLab)
	n := NewNetwork(cfg)
	n.Start()
	_, code := n.Submit(NodeA, egp.CreateRequest{
		NumPairs:    10, // far more than 1 comm + 1 memory qubit
		Keep:        true,
		Atomic:      true,
		MinFidelity: 0.6,
		Priority:    egp.PriorityCK,
	})
	if code != wire.ErrMemExceeded {
		t.Fatalf("expected MEMEXCEEDED, got %v", code)
	}
}

func TestRequestTimeout(t *testing.T) {
	cfg := DefaultConfig(nv.ScenarioLab)
	cfg.Seed = 17
	n := NewNetwork(cfg)
	// A deadline long enough to pass the FEU feasibility estimate for one
	// pair but too short for 40 pairs in practice is hard to construct
	// reliably; instead use a feasible estimate and verify the TIMEOUT path
	// by asking for many pairs with a deadline close to the estimate for
	// far fewer.
	submitAt(n, 0, NodeA, egp.CreateRequest{
		NumPairs:    30,
		Keep:        false,
		MinFidelity: 0.6,
		MaxTime:     4 * sim.Second,
		Priority:    egp.PriorityMD,
	})
	n.Run(6 * sim.Second)
	timedOut := n.Collector.ErrorCount("TIMEOUT")
	completed := n.Collector.RequestLatency(egp.PriorityMD).Count()
	if timedOut+completed == 0 {
		t.Fatal("request should either complete or time out")
	}
}

func TestQBERAccountingForMD(t *testing.T) {
	cfg := DefaultConfig(nv.ScenarioLab)
	cfg.Seed = 23
	n := NewNetwork(cfg)
	submitAt(n, 0, NodeA, egp.CreateRequest{
		NumPairs:    80,
		Keep:        false,
		MinFidelity: 0.6,
		Priority:    egp.PriorityMD,
	})
	n.Run(30 * sim.Second)
	q := n.Collector.QBER(egp.PriorityMD)
	if q == nil || q.Samples() < 40 {
		t.Fatalf("MD runs should accumulate QBER samples, got %d", q.Samples())
	}
	// The QBER-derived estimate must land in a physically sensible band:
	// well above random correlations and consistent with the heralded
	// fidelity (~0.65) minus readout noise, with sampling slack.
	est := q.FidelityEstimate()
	if est < 0.35 || est > 0.9 {
		t.Fatalf("QBER-derived fidelity estimate out of range: %v", est)
	}
}

func TestFairnessBetweenOrigins(t *testing.T) {
	cfg := DefaultConfig(nv.ScenarioLab)
	cfg.Seed = 29
	n := NewNetwork(cfg)
	for i := 0; i < 4; i++ {
		origin := NodeA
		if i%2 == 1 {
			origin = NodeB
		}
		submitAt(n, sim.Duration(i)*sim.Millisecond, origin, egp.CreateRequest{
			NumPairs:    2,
			Keep:        false,
			MinFidelity: 0.6,
			Priority:    egp.PriorityMD,
		})
	}
	n.Run(6 * sim.Second)
	byOrigin := n.Collector.PairsByOrigin()
	if byOrigin[NodeA] == 0 || byOrigin[NodeB] == 0 {
		t.Fatalf("both origins should be served: %v", byOrigin)
	}
	rep := n.Collector.Fairness(NodeA, NodeB)
	if rep.OKCountRelDiff > 0.5 {
		t.Fatalf("origin fairness badly violated: %+v", rep)
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	run := func(seed int64) (int, float64) {
		cfg := DefaultConfig(nv.ScenarioLab)
		cfg.Seed = seed
		n := NewNetwork(cfg)
		submitAt(n, 0, NodeA, egp.CreateRequest{NumPairs: 3, MinFidelity: 0.6, Priority: egp.PriorityMD})
		n.Run(2 * sim.Second)
		return len(n.OKs), n.Collector.Fidelity(egp.PriorityMD).Mean()
	}
	oks1, f1 := run(99)
	oks2, f2 := run(99)
	if oks1 != oks2 || math.Abs(f1-f2) > 1e-12 {
		t.Fatalf("same seed should reproduce identical runs: %d/%v vs %d/%v", oks1, f1, oks2, f2)
	}
}

func TestQL2020KeepThroughputLowerThanLab(t *testing.T) {
	// Section 6.2: QL2020 K-type throughput is roughly an order of magnitude
	// below Lab because every attempt must wait for the midpoint reply.
	run := func(scenario nv.ScenarioID) float64 {
		cfg := DefaultConfig(scenario)
		cfg.Seed = 31
		n := NewNetwork(cfg)
		submitAt(n, 0, NodeA, egp.CreateRequest{
			NumPairs:    200,
			Keep:        true,
			MinFidelity: 0.6,
			Priority:    egp.PriorityCK,
		})
		n.Run(5 * sim.Second)
		return n.Collector.Throughput(egp.PriorityCK)
	}
	lab := run(nv.ScenarioLab)
	ql := run(nv.ScenarioQL2020)
	if lab <= 0 {
		t.Fatal("Lab K throughput should be positive")
	}
	if ql <= 0 {
		t.Fatal("QL2020 K throughput should be positive")
	}
	if lab < 3*ql {
		t.Fatalf("Lab K throughput (%v) should be well above QL2020 (%v)", lab, ql)
	}
}

func TestRobustnessToClassicalLoss(t *testing.T) {
	// Section 6.1: inflated classical losses must not break the protocol;
	// pairs keep being delivered.
	cfg := DefaultConfig(nv.ScenarioLab)
	cfg.Seed = 37
	cfg.ClassicalLossProb = 1e-3 // even harsher than the paper's 1e-4
	n := NewNetwork(cfg)
	submitAt(n, 0, NodeA, egp.CreateRequest{
		NumPairs:    10,
		Keep:        false,
		MinFidelity: 0.6,
		Priority:    egp.PriorityMD,
	})
	n.Run(5 * sim.Second)
	if n.Collector.OKCount(egp.PriorityMD) == 0 {
		t.Fatal("protocol should still deliver pairs under inflated classical loss")
	}
}

func TestStopHaltsGeneration(t *testing.T) {
	cfg := DefaultConfig(nv.ScenarioLab)
	n := NewNetwork(cfg)
	n.Start()
	n.Stop()
	n.Submit(NodeA, egp.CreateRequest{NumPairs: 1, MinFidelity: 0.6, Priority: egp.PriorityMD})
	_ = n.Sim.RunFor(200 * sim.Millisecond)
	if len(n.OKs) != 0 {
		t.Fatal("no pairs should be generated after Stop")
	}
}

func TestDescribe(t *testing.T) {
	n := NewNetwork(DefaultConfig(nv.ScenarioQL2020))
	if n.Describe() == "" {
		t.Fatal("Describe should not be empty")
	}
}
