package scenario

import (
	"fmt"
	"math"

	"repro/internal/egp"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/network"
	"repro/internal/nv"
	"repro/internal/quantum"
	"repro/internal/sim"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Compiled is a fully resolved scenario: every default filled in, every name
// parsed, ready to instantiate. The base Config carries the spec's own seed;
// trial harnesses overwrite Seed (and Trace/Metrics) per instance.
type Compiled struct {
	// Spec is the source spec (unmodified).
	Spec *Spec
	// Topology is the resolved node graph.
	Topology netsim.Spec
	// Config is the resolved link-layer configuration.
	Config netsim.Config
	// Seconds/Trials are the run window (defaults 1 s × 3 trials).
	Seconds float64
	Trials  int

	// Poisson is the legacy single-class stream (nil unless configured).
	Poisson *netsim.TrafficConfig
	// Classes is the multi-class workload (empty unless configured).
	Classes []workload.ClassSpec
	// Standing are the per-link build-time requests.
	Standing []StandingRequest

	// Service is the end-to-end section (nil for link-layer scenarios).
	Service *CompiledService

	// Faults is the resolved fault plan (nil for fault-free scenarios).
	Faults *faults.Plan
}

// StandingRequest is one resolved standing request, submitted on every link
// from its A endpoint before the run starts.
type StandingRequest struct {
	Pairs       int
	MinFidelity float64
	Priority    int
}

// CompiledService is the resolved end-to-end section.
type CompiledService struct {
	Src, Dst         int
	Cost             string
	SwapGateFidelity float64
	Traffic          network.TrafficConfig
	StandingPairs    int
}

// Compile resolves the spec into runnable configuration, validating every
// section. The returned Compiled is independent of the spec (mutating one
// does not affect the other).
func (s *Spec) Compile() (*Compiled, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("scenario needs a name")
	}
	c := &Compiled{Spec: s, Seconds: 1, Trials: 3}

	topo, err := s.Topology.resolve()
	if err != nil {
		return nil, sectionErr(s.Name, "topology", err)
	}
	if err := topo.Validate(); err != nil {
		return nil, sectionErr(s.Name, "topology", err)
	}
	c.Topology = topo

	hw := s.Hardware
	if hw == nil {
		hw = &Hardware{}
	}
	scen := nv.ScenarioID(hw.Scenario)
	if hw.Scenario == "" {
		scen = nv.ScenarioLab
	}
	switch scen {
	case nv.ScenarioLab, nv.ScenarioQL2020:
	default:
		return nil, sectionErr(s.Name, "hardware", fmt.Errorf("unknown scenario %q (Lab|QL2020)", hw.Scenario))
	}
	backend, err := quantum.ResolveBackend(hw.Backend)
	if err != nil {
		return nil, sectionErr(s.Name, "hardware", err)
	}

	cfg := netsim.DefaultConfig(topo, scen)
	cfg.Backend = backend
	if hw.MemoryQubits < 0 {
		return nil, sectionErr(s.Name, "hardware", fmt.Errorf("negative memory_qubits"))
	}
	if hw.MemoryQubits > 0 || hw.IdealMemory {
		p := nv.NewPlatform(scen)
		if hw.MemoryQubits > 0 {
			p.MemoryQubits = hw.MemoryQubits
		}
		if hw.IdealMemory {
			// Generation and gate noise stay; stored qubits stop decaying
			// (the closed-form validation hardware of the network tests).
			p.Gates.ElectronT1 = math.Inf(1)
			p.Gates.ElectronT2 = math.Inf(1)
			p.Gates.CarbonT1 = math.Inf(1)
			p.Gates.CarbonT2 = math.Inf(1)
			p.CarbonCoupling = nv.CarbonCoupling{}
		}
		cfg.Platform = p
	}

	eng := s.Engine
	if eng == nil {
		eng = &Engine{}
	}
	if eng.Seed != 0 {
		cfg.Seed = eng.Seed
	}
	queue, err := sim.ResolveQueue(eng.Queue)
	if err != nil {
		return nil, sectionErr(s.Name, "engine", err)
	}
	cfg.Queue = queue
	if eng.Shards < 0 {
		return nil, sectionErr(s.Name, "engine", fmt.Errorf("negative shards"))
	}
	cfg.Shards = eng.Shards

	if p := s.Protocol; p != nil {
		if p.Scheduler != "" {
			switch p.Scheduler {
			case "FCFS", "LowerWFQ", "HigherWFQ":
				cfg.Scheduler = p.Scheduler
			default:
				return nil, sectionErr(s.Name, "protocol", fmt.Errorf("unknown scheduler %q (FCFS|LowerWFQ|HigherWFQ)", p.Scheduler))
			}
		}
		if p.ClassicalLoss < 0 || p.ClassicalLoss >= 1 {
			return nil, sectionErr(s.Name, "protocol", fmt.Errorf("classical_loss %g out of [0,1)", p.ClassicalLoss))
		}
		cfg.ClassicalLossProb = p.ClassicalLoss
		if p.MaxQueueLen < 0 {
			return nil, sectionErr(s.Name, "protocol", fmt.Errorf("negative max_queue_len"))
		}
		if p.MaxQueueLen > 0 {
			cfg.MaxQueueLen = p.MaxQueueLen
		}
		if p.StorageMargin != nil {
			if *p.StorageMargin < 0 {
				return nil, sectionErr(s.Name, "protocol", fmt.Errorf("negative storage_margin"))
			}
			cfg.StorageMargin = *p.StorageMargin
		}
		if p.EmissionMultiplexing != nil {
			cfg.EmissionMultiplexing = *p.EmissionMultiplexing
		}
		cfg.HoldPairs = p.HoldPairs
	}

	if r := s.Run; r != nil {
		if r.Seconds < 0 || r.Trials < 0 {
			return nil, sectionErr(s.Name, "run", fmt.Errorf("negative seconds or trials"))
		}
		if r.Seconds > 0 {
			c.Seconds = r.Seconds
		}
		if r.Trials > 0 {
			c.Trials = r.Trials
		}
	}

	if t := s.Traffic; t != nil {
		if t.Poisson != nil && len(t.Classes) > 0 {
			return nil, sectionErr(s.Name, "traffic", fmt.Errorf("poisson and classes are mutually exclusive (model the stream as a class instead)"))
		}
		if t.Poisson != nil {
			tc, err := t.Poisson.resolve()
			if err != nil {
				return nil, sectionErr(s.Name, "traffic.poisson", err)
			}
			c.Poisson = &tc
		}
		names := make(map[string]bool, len(t.Classes))
		for i, cl := range t.Classes {
			spec, err := cl.resolve()
			if err != nil {
				return nil, sectionErr(s.Name, fmt.Sprintf("traffic.classes[%d]", i), err)
			}
			if names[spec.Name] {
				return nil, sectionErr(s.Name, fmt.Sprintf("traffic.classes[%d]", i), fmt.Errorf("duplicate class name %q", spec.Name))
			}
			names[spec.Name] = true
			c.Classes = append(c.Classes, spec)
		}
		for i, st := range t.Standing {
			req, err := st.resolve()
			if err != nil {
				return nil, sectionErr(s.Name, fmt.Sprintf("traffic.standing[%d]", i), err)
			}
			c.Standing = append(c.Standing, req)
		}
	}

	if sv := s.Service; sv != nil {
		res, err := sv.resolve(topo.Nodes)
		if err != nil {
			return nil, sectionErr(s.Name, "service", err)
		}
		c.Service = &res
		// The swap engine consumes held link pairs, exactly as cmd/e2e sets
		// up the link layer.
		cfg.HoldPairs = true
		if cfg.Shards > 1 {
			return nil, sectionErr(s.Name, "service", fmt.Errorf("the network layer is serial-only; drop engine.shards"))
		}
	}

	if f := s.Faults; f != nil {
		plan, err := f.resolve(topo, cfg.Seed)
		if err != nil {
			return nil, sectionErr(s.Name, "faults", err)
		}
		if err := plan.Validate(topo); err != nil {
			return nil, sectionErr(s.Name, "faults", err)
		}
		c.Faults = plan
	}

	c.Config = cfg
	return c, nil
}

// resolve maps the faults section onto a fault plan: explicit events in
// order, then the generated outages.
func (f Faults) resolve(topo netsim.Spec, engineSeed int64) (*faults.Plan, error) {
	plan := &faults.Plan{}
	for i, ev := range f.Events {
		fe, err := ev.resolve()
		if err != nil {
			return nil, fmt.Errorf("events[%d]: %w", i, err)
		}
		plan.Events = append(plan.Events, fe)
	}
	if o := f.Outages; o != nil {
		if o.Count <= 0 {
			return nil, fmt.Errorf("outages: count must be positive")
		}
		seed := o.Seed
		if seed == 0 {
			seed = engineSeed
		}
		gen, err := faults.Outages(topo, faults.OutageSpec{
			Seed:    seed,
			Outages: o.Count,
			Window:  seconds(o.WindowS),
			MinDown: seconds(o.MinDownS),
			MaxDown: seconds(o.MaxDownS),
		})
		if err != nil {
			return nil, fmt.Errorf("outages: %w", err)
		}
		plan.Events = append(plan.Events, gen.Events...)
	}
	if len(plan.Events) == 0 {
		return nil, fmt.Errorf("faults section present but schedules nothing")
	}
	return plan, nil
}

// resolve maps one fault event onto the injector's representation.
func (ev FaultEvent) resolve() (faults.Event, error) {
	if ev.AtS < 0 {
		return faults.Event{}, fmt.Errorf("negative at_s %g", ev.AtS)
	}
	var st netsim.LinkState
	switch ev.State {
	case "up":
		st = netsim.LinkUp
	case "degraded":
		st = netsim.LinkDegraded
	case "down":
		st = netsim.LinkDown
	default:
		return faults.Event{}, fmt.Errorf("unknown state %q (up|degraded|down)", ev.State)
	}
	out := faults.Event{At: seconds(ev.AtS), State: st}
	if len(ev.Link) > 0 {
		if len(ev.Link) != 2 {
			return faults.Event{}, fmt.Errorf("link wants [a, b], got %v", ev.Link)
		}
		out.Link = &netsim.Edge{A: ev.Link[0], B: ev.Link[1]}
	}
	if ev.Node != nil {
		n := *ev.Node
		out.Node = &n
	}
	if (out.Link == nil) == (out.Node == nil) {
		return faults.Event{}, fmt.Errorf("exactly one of link and node must be set")
	}
	if d := ev.Degrade; d != nil {
		if st != netsim.LinkDegraded {
			return faults.Event{}, fmt.Errorf("degrade parameters are only valid with state degraded")
		}
		out.Degrade = &netsim.Degrade{
			ClassicalLoss: d.ClassicalLoss,
			PairFidelity:  d.PairFidelity,
			RateDivisor:   d.RateDivisor,
		}
	}
	return out, nil
}

// resolve maps the topology section onto the netsim generators.
func (t Topology) resolve() (netsim.Spec, error) {
	if t.Kind == "dragonfly" && (t.Routers != 0 || t.Groups != 0) {
		if t.Routers < 2 || t.Groups < 2 {
			return netsim.Spec{}, fmt.Errorf("dragonfly needs routers >= 2 and groups >= 2, got %d/%d", t.Routers, t.Groups)
		}
		if t.Nodes != 0 && t.Nodes != t.Routers*t.Groups {
			return netsim.Spec{}, fmt.Errorf("nodes %d contradicts routers*groups = %d", t.Nodes, t.Routers*t.Groups)
		}
		return netsim.Dragonfly(t.Routers, t.Groups), nil
	}
	if t.Kind != "dragonfly" && (t.Routers != 0 || t.Groups != 0) {
		return netsim.Spec{}, fmt.Errorf("routers/groups only apply to kind dragonfly")
	}
	return netsim.SpecFromFlags(t.Kind, t.Nodes, t.Edges)
}

// resolve fills the legacy stream's defaults, mirroring netsim.NewTraffic.
func (p Poisson) resolve() (netsim.TrafficConfig, error) {
	if p.Load <= 0 {
		return netsim.TrafficConfig{}, fmt.Errorf("load must be positive")
	}
	if p.MaxPairs < 0 || p.MaxTimeS < 0 {
		return netsim.TrafficConfig{}, fmt.Errorf("negative max_pairs or max_time_s")
	}
	tc := netsim.TrafficConfig{
		Load:        p.Load,
		MaxPairs:    p.MaxPairs,
		MinFidelity: p.MinFidelity,
		Keep:        p.Keep,
		MaxTime:     seconds(p.MaxTimeS),
	}
	if tc.MaxPairs == 0 {
		tc.MaxPairs = 1
	}
	if tc.MinFidelity == 0 {
		tc.MinFidelity = 0.64
	}
	return tc, nil
}

// resolve maps one class onto the workload engine's spec, filling defaults
// and validating.
func (cl Class) resolve() (workload.ClassSpec, error) {
	prio, err := workload.ParsePriority(cl.Priority)
	if err != nil {
		return workload.ClassSpec{}, err
	}
	origin, err := workload.ParseOrigin(cl.Origin)
	if err != nil {
		return workload.ClassSpec{}, err
	}
	spec := workload.ClassSpec{
		Name:        cl.Name,
		Priority:    prio,
		MinPairs:    cl.MinPairs,
		MaxPairs:    cl.MaxPairs,
		FixedPairs:  cl.FixedPairs,
		MinFidelity: cl.MinFidelity,
		Deadline:    seconds(cl.DeadlineS),
		Origin:      origin,
		Arrival: workload.Arrival{
			Kind:            workload.ArrivalKind(cl.Arrival.Kind),
			Load:            cl.Arrival.Load,
			Users:           cl.Arrival.Users,
			PerUserRate:     cl.Arrival.PerUserRate,
			BurstMultiplier: cl.Arrival.BurstMultiplier,
			MeanBurst:       seconds(cl.Arrival.MeanBurstS),
			MeanIdle:        seconds(cl.Arrival.MeanIdleS),
			Period:          seconds(cl.Arrival.PeriodS),
			Sessions:        cl.Arrival.Sessions,
			ThinkTime:       seconds(cl.Arrival.ThinkTimeS),
		},
	}
	for _, ph := range cl.Arrival.Phases {
		spec.Arrival.Phases = append(spec.Arrival.Phases, workload.Phase{Fraction: ph.Fraction, Multiplier: ph.Multiplier})
	}
	if spec.FixedPairs == 0 {
		if spec.MinPairs == 0 {
			spec.MinPairs = 1
		}
		if spec.MaxPairs == 0 {
			spec.MaxPairs = spec.MinPairs
		}
	}
	if spec.MinFidelity == 0 {
		spec.MinFidelity = 0.64
	}
	if err := spec.Validate(); err != nil {
		return workload.ClassSpec{}, err
	}
	return spec, nil
}

// resolve fills one standing request's defaults.
func (st Standing) resolve() (StandingRequest, error) {
	if st.Pairs <= 0 {
		return StandingRequest{}, fmt.Errorf("standing request needs pairs > 0")
	}
	prio := egp.PriorityMD
	if st.Priority != "" {
		p, err := workload.ParsePriority(st.Priority)
		if err != nil {
			return StandingRequest{}, err
		}
		prio = p
	}
	fmin := st.MinFidelity
	if fmin == 0 {
		fmin = 0.64
	}
	if fmin < 0 || fmin > 1 {
		return StandingRequest{}, fmt.Errorf("min_fidelity %g out of (0,1]", fmin)
	}
	return StandingRequest{Pairs: st.Pairs, MinFidelity: fmin, Priority: prio}, nil
}

// resolve fills the service section's defaults, mirroring cmd/e2e's flags.
func (sv Service) resolve(nodes int) (CompiledService, error) {
	// Dst omitted or negative selects the last node, mirroring cmd/e2e's
	// -dst default; an explicit dst equal to src is rejected below.
	dst := nodes - 1
	if sv.Dst != nil && *sv.Dst >= 0 {
		dst = *sv.Dst
	}
	if sv.Src < 0 || sv.Src >= nodes || dst < 0 || dst >= nodes || sv.Src == dst {
		return CompiledService{}, fmt.Errorf("bad src/dst pair %d-%d for %d nodes", sv.Src, dst, nodes)
	}
	cost := sv.Cost
	if cost == "" {
		cost = "hops"
	}
	switch cost {
	case "hops", "fidelity", "rate":
	default:
		return CompiledService{}, fmt.Errorf("unknown cost %q (hops|fidelity|rate)", cost)
	}
	gate := sv.SwapGateFidelity
	if gate == 0 {
		gate = 1
	}
	if gate <= 0 || gate > 1 {
		return CompiledService{}, fmt.Errorf("swap_gate_fidelity %g out of (0,1]", gate)
	}
	res := CompiledService{
		Src: sv.Src, Dst: dst,
		Cost:             cost,
		SwapGateFidelity: gate,
		StandingPairs:    sv.StandingPairs,
		Traffic: network.TrafficConfig{
			Pairs:       [][2]int{{sv.Src, dst}},
			Load:        sv.Load,
			MaxPairs:    sv.MaxPairs,
			MinFidelity: sv.MinFidelity,
			MaxTime:     seconds(sv.DeadlineS),
		},
	}
	if res.Traffic.Load == 0 {
		res.Traffic.Load = 0.3
	}
	if res.Traffic.MaxPairs == 0 {
		res.Traffic.MaxPairs = 1
	}
	if res.Traffic.MinFidelity == 0 {
		res.Traffic.MinFidelity = 0.35
	}
	if res.Traffic.Load < 0 || res.Traffic.MaxPairs < 0 || sv.StandingPairs < 0 || sv.DeadlineS < 0 {
		return CompiledService{}, fmt.Errorf("negative load, max_pairs, standing_pairs or deadline_s")
	}
	return res, nil
}

// Attach installs the compiled traffic on a freshly built network: the
// single-class Poisson generator or the multi-class workload engine, then
// the standing requests on every link in link order (from the A endpoint,
// matching the bench primer). The returned engine is nil for pure Poisson or
// traffic-less scenarios.
func (c *Compiled) Attach(nw *netsim.Network) (*netsim.MultiTraffic, error) {
	var mt *netsim.MultiTraffic
	if c.Faults != nil {
		// Install the fault plan before the run starts: every transition
		// becomes an ordinary event on the owning link's engine.
		if err := c.Faults.Schedule(nw); err != nil {
			return nil, fmt.Errorf("scenario %q: faults: %w", c.Spec.Name, err)
		}
	}
	if c.Poisson != nil {
		nw.AttachTraffic(*c.Poisson)
	}
	if len(c.Classes) > 0 {
		var err error
		mt, err = nw.AttachWorkload(c.Classes)
		if err != nil {
			return nil, err
		}
	}
	for _, st := range c.Standing {
		for _, l := range nw.Links {
			_, code := nw.Submit(l, "A", egp.CreateRequest{
				NumPairs:    st.Pairs,
				Keep:        st.Priority != egp.PriorityMD,
				MinFidelity: st.MinFidelity,
				Priority:    st.Priority,
				PurposeID:   1,
				Consecutive: st.Priority != egp.PriorityCK,
			})
			if code != wire.ErrNone {
				return nil, fmt.Errorf("scenario %q: standing request on link %s rejected: %s", c.Spec.Name, l.Name, code)
			}
		}
	}
	return mt, nil
}
