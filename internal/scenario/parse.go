package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"
)

// Load reads and parses a scenario file. Errors carry file:line:column
// context plus the offending source line.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data, path)
}

// Parse parses one scenario document; name labels the source in errors
// (usually the file path). Unknown fields anywhere in the document, type
// mismatches, syntax errors and trailing content are all rejected.
func Parse(data []byte, name string) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, contextualize(name, data, err)
	}
	// A spec file is exactly one document: trailing JSON means a stray
	// paste, which silently dropping would mask.
	var extra json.RawMessage
	switch err := dec.Decode(&extra); {
	case err == nil:
		return nil, fmt.Errorf("%s: trailing content after the scenario document", name)
	case !errors.Is(err, io.EOF):
		return nil, contextualize(name, data, err)
	}
	if s.Name == "" {
		return nil, fmt.Errorf("%s: scenario needs a name", name)
	}
	return &s, nil
}

// Canonical renders the spec in its canonical encoding: two-space-indented
// JSON with a trailing newline, fields in declaration order, zero-valued
// optional fields omitted. Committed spec files are kept in this form, so
// Parse followed by Canonical reproduces them byte for byte.
func (s *Spec) Canonical() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// unknownFieldRE extracts the field name from encoding/json's unknown-field
// error, which carries no position information of its own.
var unknownFieldRE = regexp.MustCompile(`json: unknown field "([^"]+)"`)

// contextualize rewrites a decode error with line/column context from the
// source bytes.
func contextualize(name string, data []byte, err error) error {
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		line, col, text := locate(data, syn.Offset)
		return fmt.Errorf("%s:%d:%d: %v\n  %s", name, line, col, syn, text)
	}
	var typ *json.UnmarshalTypeError
	if errors.As(err, &typ) {
		line, col, text := locate(data, typ.Offset)
		field := typ.Field
		if field == "" {
			field = "value"
		}
		return fmt.Errorf("%s:%d:%d: %s cannot hold a JSON %s\n  %s", name, line, col, field, typ.Value, text)
	}
	if m := unknownFieldRE.FindStringSubmatch(err.Error()); m != nil {
		// The decoder reports only the name; locate its first occurrence as
		// a quoted key for the context line.
		if off := bytes.Index(data, []byte(`"`+m[1]+`"`)); off >= 0 {
			line, col, text := locate(data, int64(off)+1)
			return fmt.Errorf("%s:%d:%d: unknown field %q\n  %s", name, line, col, m[1], text)
		}
		return fmt.Errorf("%s: unknown field %q", name, m[1])
	}
	return fmt.Errorf("%s: %v", name, err)
}

// locate maps a byte offset to 1-based line/column plus the trimmed source
// line, for error context.
func locate(data []byte, offset int64) (line, col int, text string) {
	if offset < 0 {
		offset = 0
	}
	if offset > int64(len(data)) {
		offset = int64(len(data))
	}
	head := data[:offset]
	line = 1 + bytes.Count(head, []byte{'\n'})
	lineStart := bytes.LastIndexByte(head, '\n') + 1
	col = int(offset) - lineStart + 1
	lineEnd := bytes.IndexByte(data[lineStart:], '\n')
	if lineEnd < 0 {
		lineEnd = len(data)
	} else {
		lineEnd += lineStart
	}
	return line, col, strings.TrimSpace(string(data[lineStart:lineEnd]))
}
