package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/egp"
	"repro/internal/netsim"
	"repro/internal/nv"
	"repro/internal/sim"
	"repro/internal/wire"
	"repro/internal/workload"
)

// TestCommittedSpecsRoundTrip pins the committed spec library: every file
// parses, compiles and re-emits byte-identically (parse → Canonical is the
// identity on canonical files).
func TestCommittedSpecsRoundTrip(t *testing.T) {
	paths, err := filepath.Glob("../../scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed specs found under scenarios/")
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := Parse(data, path)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		if _, err := sp.Compile(); err != nil {
			t.Fatalf("compile %s: %v", path, err)
		}
		canon, err := sp.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, canon) {
			t.Errorf("%s is not byte-stable under parse → Canonical; run scenariocheck -w", path)
		}
	}
}

// TestParseRejectsUnknownFields requires strict decoding with line context:
// a typo anywhere in the document must fail, naming the field and its
// position.
func TestParseRejectsUnknownFields(t *testing.T) {
	doc := []byte(`{
  "name": "x",
  "topology": {
    "kind": "chain",
    "nodes": 4,
    "nodse": 5
  }
}
`)
	_, err := Parse(doc, "typo.json")
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown field "nodse"`) {
		t.Errorf("error does not name the field: %v", err)
	}
	if !strings.Contains(msg, "typo.json:6:") {
		t.Errorf("error does not carry line context: %v", err)
	}
	if !strings.Contains(msg, `"nodse": 5`) {
		t.Errorf("error does not quote the source line: %v", err)
	}
}

// TestParseRejectsBadDocuments covers the other strictness rules: type
// mismatches with position, syntax errors, trailing content, missing name.
func TestParseRejectsBadDocuments(t *testing.T) {
	cases := []struct {
		label string
		doc   string
		want  string
	}{
		{"type mismatch", "{\n  \"name\": \"x\",\n  \"topology\": {\"kind\": \"chain\", \"nodes\": \"four\"}\n}\n", "nodes cannot hold a JSON string"},
		{"type mismatch line", "{\n  \"name\": \"x\",\n  \"topology\": {\"kind\": \"chain\", \"nodes\": \"four\"}\n}\n", "bad.json:3:"},
		{"syntax error", "{\n  \"name\": \"x\",,\n}\n", "bad.json:2:"},
		{"trailing content", "{\"name\": \"x\", \"topology\": {\"kind\": \"chain\", \"nodes\": 4}}\n{\"more\": 1}\n", "trailing content"},
		{"missing name", "{\"topology\": {\"kind\": \"chain\", \"nodes\": 4}}\n", "needs a name"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.doc), "bad.json")
		if err == nil {
			t.Errorf("%s: accepted", tc.label)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.label, err, tc.want)
		}
	}
}

// TestCompileRejectsInvalidValues spot-checks section validation: every error
// names the spec and the offending section.
func TestCompileRejectsInvalidValues(t *testing.T) {
	f := func(mutate func(*Spec)) error {
		s := &Spec{Name: "t", Topology: Topology{Kind: "chain", Nodes: 4}}
		mutate(s)
		_, err := s.Compile()
		return err
	}
	cases := []struct {
		label  string
		mutate func(*Spec)
		want   string
	}{
		{"bad scenario", func(s *Spec) { s.Hardware = &Hardware{Scenario: "Moon"} }, "hardware"},
		{"bad backend", func(s *Spec) { s.Hardware = &Hardware{Backend: "sparse"} }, "hardware"},
		{"bad queue", func(s *Spec) { s.Engine = &Engine{Queue: "lifo"} }, "engine"},
		{"negative shards", func(s *Spec) { s.Engine = &Engine{Shards: -1} }, "engine"},
		{"bad scheduler", func(s *Spec) { s.Protocol = &Protocol{Scheduler: "SJF"} }, "protocol"},
		{"loss out of range", func(s *Spec) { s.Protocol = &Protocol{ClassicalLoss: 1} }, "protocol"},
		{"poisson and classes", func(s *Spec) {
			s.Traffic = &Traffic{
				Poisson: &Poisson{Load: 0.5},
				Classes: []Class{{Name: "a", Priority: "MD", Arrival: ArrivalSpec{Kind: "poisson", Load: 0.5}}},
			}
		}, "mutually exclusive"},
		{"bad priority", func(s *Spec) {
			s.Traffic = &Traffic{Classes: []Class{{Name: "a", Priority: "URGENT", Arrival: ArrivalSpec{Kind: "poisson", Load: 0.5}}}}
		}, "classes[0]"},
		{"duplicate class", func(s *Spec) {
			cl := Class{Name: "a", Priority: "MD", Arrival: ArrivalSpec{Kind: "poisson", Load: 0.5}}
			s.Traffic = &Traffic{Classes: []Class{cl, cl}}
		}, "duplicate class"},
		{"two intensities", func(s *Spec) {
			s.Traffic = &Traffic{Classes: []Class{{Name: "a", Priority: "MD",
				Arrival: ArrivalSpec{Kind: "poisson", Load: 0.5, Users: 10, PerUserRate: 1}}}}
		}, "classes[0]"},
		{"standing without pairs", func(s *Spec) { s.Traffic = &Traffic{Standing: []Standing{{}}} }, "standing[0]"},
		{"bad cost", func(s *Spec) { s.Service = &Service{Cost: "latency"} }, "service"},
		{"service with shards", func(s *Spec) {
			s.Engine = &Engine{Shards: 4}
			s.Service = &Service{}
		}, "serial-only"},
		{"routers on chain", func(s *Spec) { s.Topology.Routers = 3 }, "topology"},
	}
	for _, tc := range cases {
		err := f(tc.mutate)
		if err == nil {
			t.Errorf("%s: accepted", tc.label)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.label, err, tc.want)
		}
		if !strings.Contains(err.Error(), `scenario "t"`) && !strings.Contains(err.Error(), "scenario") {
			t.Errorf("%s: error %q does not name the scenario", tc.label, err)
		}
	}
}

// TestCompileDefaults checks the documented defaults of a minimal spec.
func TestCompileDefaults(t *testing.T) {
	s := &Spec{Name: "min", Topology: Topology{Kind: "chain", Nodes: 4}}
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	want := netsim.DefaultConfig(netsim.Chain(4), nv.ScenarioLab)
	if !reflect.DeepEqual(c.Config, want) {
		t.Errorf("minimal spec config = %+v, want DefaultConfig %+v", c.Config, want)
	}
	if c.Seconds != 1 || c.Trials != 3 {
		t.Errorf("run window = %g s x %d, want 1 s x 3", c.Seconds, c.Trials)
	}
	if c.Poisson != nil || len(c.Classes) != 0 || c.Service != nil {
		t.Error("minimal spec should compile with no traffic and no service")
	}
}

// TestSpecReproducesFlagConfig is the golden parity test: the committed
// chain-16 bench spec, compiled and attached, must reproduce the classic
// flag-built configuration byte for byte — identical config, identical
// deterministic counters, identical stats tables after a run.
func TestSpecReproducesFlagConfig(t *testing.T) {
	sp, err := Load("../../scenarios/chain16-bench.json")
	if err != nil {
		t.Fatal(err)
	}
	c, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}

	// The flag-era reference: DefaultConfig on the Lab hardware, the legacy
	// Poisson generator, one 4096-pair standing MD request per link.
	cfg := netsim.DefaultConfig(netsim.Chain(16), nv.ScenarioLab)
	if !reflect.DeepEqual(c.Config, cfg) {
		t.Fatalf("spec config %+v != flag config %+v", c.Config, cfg)
	}

	build := func(attach func(*netsim.Network) error) *netsim.Network {
		nw, err := netsim.NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := attach(nw); err != nil {
			t.Fatal(err)
		}
		nw.Run(sim.DurationSeconds(0.2))
		return nw
	}

	specNet := build(func(nw *netsim.Network) error {
		_, err := c.Attach(nw)
		return err
	})
	flagNet := build(func(nw *netsim.Network) error {
		nw.AttachTraffic(netsim.TrafficConfig{Load: 0.7, MaxPairs: 2, MinFidelity: 0.64})
		for _, l := range nw.Links {
			if _, code := nw.Submit(l, "A", egp.CreateRequest{
				NumPairs:    4096,
				MinFidelity: 0.64,
				Priority:    egp.PriorityMD,
				PurposeID:   1,
				Consecutive: true,
			}); code != wire.ErrNone {
				t.Fatalf("primer rejected: %s", code)
			}
		}
		return nil
	})

	if got, want := specNet.Sim.Executed(), flagNet.Sim.Executed(); got != want {
		t.Errorf("events: spec %d != flags %d", got, want)
	}
	if got, want := specNet.Attempts(), flagNet.Attempts(); got != want {
		t.Errorf("attempts: spec %d != flags %d", got, want)
	}
	specLinks, specAgg := specNet.Stats()
	flagLinks, flagAgg := flagNet.Stats()
	if !reflect.DeepEqual(specLinks, flagLinks) {
		t.Error("per-link stats tables differ between spec and flag paths")
	}
	if !reflect.DeepEqual(specAgg, flagAgg) {
		t.Errorf("aggregate stats differ: spec %+v != flags %+v", specAgg, flagAgg)
	}
}

// TestCompileMixedClasses pins the multi-class resolution of the committed
// acceptance spec: three classes, correct priorities, arrival kinds and
// filled defaults.
func TestCompileMixedClasses(t *testing.T) {
	sp, err := Load("../../scenarios/chain8-mixed.json")
	if err != nil {
		t.Fatal(err)
	}
	c, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Classes) != 3 {
		t.Fatalf("got %d classes, want 3", len(c.Classes))
	}
	md, nl, ck := c.Classes[0], c.Classes[1], c.Classes[2]
	if md.Priority != egp.PriorityMD || nl.Priority != egp.PriorityNL || ck.Priority != egp.PriorityCK {
		t.Errorf("priorities = %d/%d/%d, want MD/NL/CK", md.Priority, nl.Priority, ck.Priority)
	}
	if md.MinPairs != 1 || md.MaxPairs != 2 {
		t.Errorf("MD pair range = [%d,%d], want [1,2]", md.MinPairs, md.MaxPairs)
	}
	if md.MinFidelity != 0.64 {
		t.Errorf("MD min fidelity default = %g, want 0.64", md.MinFidelity)
	}
	if nl.Arrival.Users != 2000000 || nl.Origin != workload.OriginA {
		t.Errorf("NL class resolved wrong: %+v", nl)
	}
	if !ck.Arrival.Closed() || ck.Arrival.Sessions != 21 {
		t.Errorf("CK class should be closed-loop with 21 sessions: %+v", ck.Arrival)
	}
	if ck.Deadline != sim.DurationSeconds(1) {
		t.Errorf("CK deadline = %v, want 1 s", ck.Deadline)
	}
}

// TestServiceSpecResolution pins the service section: an omitted (or
// negative) dst selects the last node, an explicit dst equal to src is
// rejected, defaults fill in, HoldPairs is implied.
func TestServiceSpecResolution(t *testing.T) {
	s := &Spec{
		Name:     "svc",
		Topology: Topology{Kind: "chain", Nodes: 5},
		Service:  &Service{},
	}
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sv := c.Service
	if sv.Src != 0 || sv.Dst != 4 {
		t.Errorf("src/dst = %d/%d, want 0/4", sv.Src, sv.Dst)
	}
	zero := 0
	bad := &Spec{
		Name:     "svc",
		Topology: Topology{Kind: "chain", Nodes: 5},
		Service:  &Service{Dst: &zero},
	}
	if _, err := bad.Compile(); err == nil || !strings.Contains(err.Error(), "src/dst") {
		t.Errorf("explicit dst == src accepted (err = %v)", err)
	}
	if sv.Cost != "hops" || sv.SwapGateFidelity != 1 {
		t.Errorf("cost/gate defaults wrong: %q/%g", sv.Cost, sv.SwapGateFidelity)
	}
	if sv.Traffic.Load != 0.3 || sv.Traffic.MaxPairs != 1 || sv.Traffic.MinFidelity != 0.35 {
		t.Errorf("service traffic defaults wrong: %+v", sv.Traffic)
	}
	if !c.Config.HoldPairs {
		t.Error("a service section must imply HoldPairs")
	}
}
