// Package scenario is the declarative run-description API: a JSON scenario
// spec is the single way to describe a simulation run — topology, hardware,
// engine, protocol options, traffic (single-class Poisson, a multi-class
// workload, standing requests) and an optional end-to-end service section —
// and compiles into the imperative configuration of today's packages
// (netsim.Config, workload class specs, network traffic). The CLIs load specs
// with -scenario <file>; committed specs live under scenarios/ and grow the
// suite without new Go code per scenario.
//
// Parsing is strict: unknown fields, type mismatches and syntax errors are
// rejected with file:line:column context. Specs have a canonical encoding
// (Canonical), and committed files are kept in it so parse → re-emit is
// byte-stable.
package scenario

import (
	"fmt"

	"repro/internal/sim"
)

// Spec is the root of a scenario file. Only Name and Topology are required;
// every omitted section takes the CLI defaults, so a minimal spec is
// {"name": ..., "topology": {...}}.
type Spec struct {
	// Name identifies the scenario (table captions, bench JSON files).
	Name string `json:"name"`
	// Description is a one-line summary for listings.
	Description string `json:"description,omitempty"`
	// Topology selects the node graph.
	Topology Topology `json:"topology"`
	// Hardware selects the platform model (default: Lab, stock parameters).
	Hardware *Hardware `json:"hardware,omitempty"`
	// Engine selects seed, event queue and shard count.
	Engine *Engine `json:"engine,omitempty"`
	// Protocol tunes the link-layer protocol options.
	Protocol *Protocol `json:"protocol,omitempty"`
	// Run sets the simulated duration and trial count.
	Run *Run `json:"run,omitempty"`
	// Traffic describes the offered workload.
	Traffic *Traffic `json:"traffic,omitempty"`
	// Service, when present, runs the network layer end to end over the
	// topology (cmd/e2e); link-layer runs omit it.
	Service *Service `json:"service,omitempty"`
	// Faults schedules deterministic fault injection over the run: link
	// down/up, node outages and degraded mode, as explicit events and/or a
	// seeded outage generator. Omitted, the run is fault-free at zero cost.
	Faults *Faults `json:"faults,omitempty"`
}

// Topology selects the node graph: one of the named generators, or an
// explicit edge list.
type Topology struct {
	// Kind is chain, star, grid, dragonfly or edges.
	Kind string `json:"kind"`
	// Nodes is the node count for chain/star/grid (grid needs a perfect
	// square) and, alternatively to routers/groups, for dragonfly (which
	// then picks the most balanced K·M factorisation).
	Nodes int `json:"nodes,omitempty"`
	// Routers/Groups pin the dragonfly D3(K, M) shape exactly.
	Routers int `json:"routers,omitempty"`
	Groups  int `json:"groups,omitempty"`
	// Edges is the explicit edge list for kind "edges", e.g. "0-1,1-2,2-0".
	Edges string `json:"edges,omitempty"`
}

// Hardware selects the platform model and pair-state backend.
type Hardware struct {
	// Scenario is the hardware scenario: Lab (default) or QL2020.
	Scenario string `json:"scenario,omitempty"`
	// Backend is the pair-state representation: dense (exact) or belldiag
	// (the O(1) fast path). Empty defers to $REPRO_BACKEND, then dense.
	Backend string `json:"backend,omitempty"`
	// MemoryQubits overrides the per-node carbon memory count (0 keeps the
	// scenario's own value).
	MemoryQubits int `json:"memory_qubits,omitempty"`
	// IdealMemory switches off storage decay (infinite coherence times, no
	// attempt dephasing) — generation and gate noise stay. Used by
	// closed-form validation runs.
	IdealMemory bool `json:"ideal_memory,omitempty"`
}

// Engine selects the simulation engine of the run.
type Engine struct {
	// Seed is the base random seed (default 1); trial i derives its own seed
	// from it.
	Seed int64 `json:"seed,omitempty"`
	// Queue is the event-queue discipline: heap (exact binary heap) or wheel
	// (hierarchical timing wheel). Empty defers to $REPRO_QUEUE, then heap.
	Queue string `json:"queue,omitempty"`
	// Shards selects the engine: <=1 serial, >1 a conservative parallel
	// engine with that many worker shards. Results are identical either way.
	Shards int `json:"shards,omitempty"`
}

// Protocol tunes the link-layer protocol options; zero values take the
// defaults of netsim.DefaultConfig.
type Protocol struct {
	// Scheduler is the per-link EGP scheduler: FCFS (default), LowerWFQ or
	// HigherWFQ.
	Scheduler string `json:"scheduler,omitempty"`
	// ClassicalLoss is the per-frame loss probability of every classical
	// channel.
	ClassicalLoss float64 `json:"classical_loss,omitempty"`
	// MaxQueueLen bounds each distributed-queue lane (default 256).
	MaxQueueLen int `json:"max_queue_len,omitempty"`
	// StorageMargin is the FEU fidelity head-room (default 0.05; an explicit
	// 0 disables it, which is why the field is a pointer).
	StorageMargin *float64 `json:"storage_margin,omitempty"`
	// EmissionMultiplexing allows M attempts to overlap midpoint replies
	// (default true; pointer so an explicit false survives).
	EmissionMultiplexing *bool `json:"emission_multiplexing,omitempty"`
	// HoldPairs keeps delivered K pairs in memory instead of auto-releasing
	// (implied by a service section).
	HoldPairs bool `json:"hold_pairs,omitempty"`
}

// Run sets the measurement window.
type Run struct {
	// Seconds is the simulated duration per trial (default 1).
	Seconds float64 `json:"seconds,omitempty"`
	// Trials is the number of independently seeded repetitions (default 3).
	Trials int `json:"trials,omitempty"`
}

// Traffic describes the offered workload: at most one free-running generator
// (the single-class Poisson generator or the multi-class workload engine)
// plus optional standing requests priming every link.
type Traffic struct {
	// Poisson is the classic single-class generator (the flag era's
	// -load/-kmax/-fmin/-keep), kept for byte-compatible reproduction of
	// existing runs. Mutually exclusive with Classes.
	Poisson *Poisson `json:"poisson,omitempty"`
	// Classes is the multi-class workload: per-class user populations,
	// arrival processes, priorities and SLOs.
	Classes []Class `json:"classes,omitempty"`
	// Standing submits one long-lived request per link at build time (the
	// bench primer pattern), keeping every link saturated from t=0.
	Standing []Standing `json:"standing,omitempty"`
}

// Poisson is the legacy single-class Poisson request stream offered to every
// link, compiled draw-for-draw identical to the flag-era generator.
type Poisson struct {
	// Load is the offered load fraction f of the paper's arrival model.
	Load float64 `json:"load"`
	// MaxPairs is k_max (default 1).
	MaxPairs int `json:"max_pairs,omitempty"`
	// MinFidelity is the requested fidelity floor (default 0.64).
	MinFidelity float64 `json:"min_fidelity,omitempty"`
	// Keep issues create-and-keep (CK) requests instead of measure-directly.
	Keep bool `json:"keep,omitempty"`
	// MaxTimeS is the per-request timeout in seconds (0 = none).
	MaxTimeS float64 `json:"max_time_s,omitempty"`
}

// Class is one traffic class of the multi-class workload engine.
type Class struct {
	// Name labels the class in SLO tables.
	Name string `json:"name"`
	// Priority is the EGP lane: NL, CK or MD.
	Priority string `json:"priority"`
	// Arrival is the class's request arrival process.
	Arrival ArrivalSpec `json:"arrival"`
	// MinPairs/MaxPairs bound the uniformly drawn pair count per request
	// (defaults 1/1); FixedPairs pins it instead.
	MinPairs   int `json:"min_pairs,omitempty"`
	MaxPairs   int `json:"max_pairs,omitempty"`
	FixedPairs int `json:"fixed_pairs,omitempty"`
	// MinFidelity is the requested fidelity floor (default 0.64).
	MinFidelity float64 `json:"min_fidelity,omitempty"`
	// DeadlineS is the per-request timeout in seconds (0 = none); misses
	// count into the class's timeout rate.
	DeadlineS float64 `json:"deadline_s,omitempty"`
	// Origin is the submitting endpoint policy: A, B or random (default).
	Origin string `json:"origin,omitempty"`
}

// ArrivalSpec describes a class's arrival process. kind selects the shape;
// open-loop kinds (poisson, bursty, diurnal) take exactly one intensity —
// load, or users with per_user_rate — and closed takes sessions with
// think_time_s.
type ArrivalSpec struct {
	// Kind is poisson, bursty, diurnal or closed.
	Kind string `json:"kind"`
	// Load is the offered load fraction f, per link.
	Load float64 `json:"load,omitempty"`
	// Users x PerUserRate is the aggregate open-loop request rate across the
	// network (split evenly over links). Millions of users cost nothing:
	// open-loop populations exist only as a rate.
	Users       int     `json:"users,omitempty"`
	PerUserRate float64 `json:"per_user_rate,omitempty"`
	// BurstMultiplier/MeanBurstS/MeanIdleS shape the bursty
	// (Markov-modulated) process.
	BurstMultiplier float64 `json:"burst_multiplier,omitempty"`
	MeanBurstS      float64 `json:"mean_burst_s,omitempty"`
	MeanIdleS       float64 `json:"mean_idle_s,omitempty"`
	// PeriodS/Phases shape the diurnal profile; fractions must sum to 1.
	PeriodS float64     `json:"period_s,omitempty"`
	Phases  []PhaseSpec `json:"phases,omitempty"`
	// Sessions/ThinkTimeS size the closed-loop population: each session
	// issues its next request when the previous one finishes, after an
	// exponential think time.
	Sessions   int     `json:"sessions,omitempty"`
	ThinkTimeS float64 `json:"think_time_s,omitempty"`
}

// PhaseSpec is one diurnal phase: fraction of the period at a rate
// multiplier.
type PhaseSpec struct {
	Fraction   float64 `json:"fraction"`
	Multiplier float64 `json:"multiplier"`
}

// Standing is one long-lived request submitted on every link at build time
// (from the link's A endpoint, before the run starts).
type Standing struct {
	// Pairs is the request's pair count (bench uses 4096).
	Pairs int `json:"pairs"`
	// MinFidelity is the fidelity floor (default 0.64).
	MinFidelity float64 `json:"min_fidelity,omitempty"`
	// Priority is NL, CK or MD (default MD).
	Priority string `json:"priority,omitempty"`
}

// Service runs the network layer end to end over the topology: routing a
// source–destination pair and driving it with Poisson end-to-end requests.
type Service struct {
	// Src/Dst are the end-to-end pair's endpoints. Dst omitted (or negative)
	// selects the last node, mirroring cmd/e2e's -dst default.
	Src int  `json:"src"`
	Dst *int `json:"dst,omitempty"`
	// Cost is the routing metric: hops (default), fidelity or rate.
	Cost string `json:"cost,omitempty"`
	// SwapGateFidelity is the repeater Bell-state-measurement gate fidelity
	// (default 1).
	SwapGateFidelity float64 `json:"swap_gate_fidelity,omitempty"`
	// Load is the offered end-to-end load fraction of the bottleneck link
	// rate (default 0.3).
	Load float64 `json:"load,omitempty"`
	// MaxPairs is k_max per end-to-end request (default 1).
	MaxPairs int `json:"max_pairs,omitempty"`
	// MinFidelity is the end-to-end delivered fidelity floor (default 0.35).
	MinFidelity float64 `json:"min_fidelity,omitempty"`
	// DeadlineS is the per-request deadline in seconds (0 = none).
	DeadlineS float64 `json:"deadline_s,omitempty"`
	// StandingPairs, when non-zero, submits one long-lived end-to-end
	// request of that many pairs at build time (the bench primer pattern).
	StandingPairs int `json:"standing_pairs,omitempty"`
}

// Faults is the fault-injection section: an explicit event list, an optional
// seeded outage generator, or both (generated events are appended after the
// explicit ones). All times are offsets from the start of the run; every
// trial replays the same plan.
type Faults struct {
	// Events are explicit admin-state transitions in schedule order.
	Events []FaultEvent `json:"events,omitempty"`
	// Outages generates seeded random link outages on top of Events.
	Outages *RandomOutages `json:"outages,omitempty"`
}

// FaultEvent is one scheduled admin-state transition of a link or a node.
type FaultEvent struct {
	// AtS is the transition time in seconds from the start of the run.
	AtS float64 `json:"at_s"`
	// State is the admin state entered at AtS: up, degraded or down.
	State string `json:"state"`
	// Link targets one link by its endpoint pair [a, b] (order-insensitive);
	// Node targets every link incident to the node (a node outage). Exactly
	// one of the two must be set.
	Link []int `json:"link,omitempty"`
	Node *int  `json:"node,omitempty"`
	// Degrade parameterises state degraded; invalid with up or down.
	Degrade *DegradeSpec `json:"degrade,omitempty"`
}

// DegradeSpec is the degraded-mode parameter set; each knob applies only
// when set.
type DegradeSpec struct {
	// ClassicalLoss replaces the per-frame loss probability of the link's
	// classical channels.
	ClassicalLoss float64 `json:"classical_loss,omitempty"`
	// PairFidelity applies a depolarising channel of that fidelity to every
	// freshly heralded pair.
	PairFidelity float64 `json:"pair_fidelity,omitempty"`
	// RateDivisor throttles attempt generation to one poll every that many
	// MHP cycles.
	RateDivisor int `json:"rate_divisor,omitempty"`
}

// RandomOutages parameterises the seeded outage generator: count outages on
// uniformly chosen links, starting uniformly in [0, window_s] and repaired
// after a uniform duration in [min_down_s, max_down_s].
type RandomOutages struct {
	// Seed drives the generator's private stream (default: the engine seed).
	Seed int64 `json:"seed,omitempty"`
	// Count is how many down/up cycles to generate.
	Count    int     `json:"count"`
	WindowS  float64 `json:"window_s"`
	MinDownS float64 `json:"min_down_s"`
	MaxDownS float64 `json:"max_down_s"`
}

// seconds converts a seconds field to a sim.Duration.
func seconds(s float64) sim.Duration { return sim.DurationSeconds(s) }

// sectionErr prefixes a validation error with the spec name and section.
func sectionErr(name, section string, err error) error {
	return fmt.Errorf("scenario %q: %s: %w", name, section, err)
}
